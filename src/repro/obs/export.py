"""OpenMetrics/Prometheus text exposition for registries and snapshots.

The scrape surface of the observability layer: anything that holds
metrics — the live process-wide :class:`~repro.obs.metrics.MetricsRegistry`,
the flat snapshot dict a run manifest carries, or the per-scheme
``simulation_end`` snapshots replayed out of a JSONL trace — renders to
the `OpenMetrics text format
<https://github.com/OpenObservability/OpenMetrics>`_ so a Prometheus-
compatible collector (or ``promtool``) can ingest it verbatim.

Three renderers, one escaping discipline:

:func:`render_openmetrics`
    A live registry: counters render as ``<name>_total`` counter
    families, gauges as gauges, histograms as histogram families with
    cumulative ``_bucket`` series, ``_sum`` and ``_count``.
:func:`render_snapshot_openmetrics`
    A flat ``{"name{k=v,...}": value}`` snapshot (manifest ``metrics``
    section): scalar values render as ``unknown``-typed families (the
    snapshot does not record counter-vs-gauge), histogram summary dicts
    as ``summary`` families with ``quantile`` series.
:func:`snapshots_to_openmetrics`
    The ``{scheme: {metric: value}}`` map of
    :func:`repro.obs.replay.metrics_snapshots`: numeric entries become
    ``sim_<metric>`` samples labelled by scheme/engine.

Metric and label *names* are mangled to the exposition charset
(``[a-zA-Z_:][a-zA-Z0-9_:]*``; dots become underscores) and label
*values* are escaped per the spec (``\\``, ``\"``, newline).
:func:`parse_openmetrics` is a small validating parser used by the test
suite as a parse-check — this repo deliberately has no ``prometheus_client``
dependency.

:class:`SnapshotDeltaSource` turns cumulative counters into per-window
rates: feed it successive snapshots (wall-clock scrapes of a live
registry, or sim-time checkpoints) and each :meth:`~SnapshotDeltaSource.delta`
returns the per-second rates over the window since the previous feed.
:func:`timeline_rates` is the sim-time twin, deriving per-window
byte-rate rows from a finalized :mod:`repro.obs.timeline` section's
cumulative machinery.
"""

from __future__ import annotations

import re
import time
from typing import Any, Callable, Iterable, Mapping

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_snapshot_key,
)

__all__ = [
    "SnapshotDeltaSource",
    "escape_label_value",
    "mangle_label_name",
    "mangle_metric_name",
    "parse_openmetrics",
    "render_openmetrics",
    "render_snapshot_openmetrics",
    "snapshots_to_openmetrics",
    "timeline_rates",
]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_NAME_CHAR = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHAR = re.compile(r"[^a-zA-Z0-9_]")


def mangle_metric_name(name: str) -> str:
    """Map an internal metric name onto the exposition charset.

    Dots (our namespace separator) and any other invalid character become
    underscores; a leading digit gains an underscore prefix.
    ``sim.latency_seconds`` -> ``sim_latency_seconds``.
    """
    mangled = _INVALID_NAME_CHAR.sub("_", str(name))
    if not mangled or mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def mangle_label_name(name: str) -> str:
    """Label names allow no colon; otherwise like :func:`mangle_metric_name`."""
    mangled = _INVALID_LABEL_CHAR.sub("_", str(name))
    if not mangled or mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def escape_label_value(value: Any) -> str:
    """Escape a label value per the exposition format spec."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_value(value: float) -> str:
    """Sample values: integers render bare, floats via repr."""
    f = float(value)
    if f != f:  # NaN
        return "NaN"
    if f in (float("inf"), float("-inf")):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _labels_clause(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{mangle_label_name(k)}="{escape_label_value(v)}"'
        for k, v in sorted(labels.items(), key=lambda kv: str(kv[0]))
    )
    return "{" + body + "}"


def _histogram_lines(
    name: str, labels: Mapping[str, Any], hist: Histogram
) -> list[str]:
    lines = []
    cumulative = 0
    for bound, count in zip(hist.buckets, hist.bucket_counts):
        cumulative += count
        le = dict(labels)
        le["le"] = _fmt_value(bound)
        lines.append(f"{name}_bucket{_labels_clause(le)} {cumulative}")
    le = dict(labels)
    le["le"] = "+Inf"
    lines.append(f"{name}_bucket{_labels_clause(le)} {hist.count}")
    lines.append(f"{name}_sum{_labels_clause(labels)} {_fmt_value(hist.sum)}")
    lines.append(f"{name}_count{_labels_clause(labels)} {hist.count}")
    return lines


def render_openmetrics(registry: MetricsRegistry, prefix: str = "") -> str:
    """Render a live registry as one OpenMetrics exposition.

    Families group by mangled metric name (one ``# TYPE`` line each);
    counters gain the ``_total`` suffix the spec requires.  ``prefix``
    filters on the *internal* (un-mangled) metric name, matching
    :meth:`MetricsRegistry.snapshot`.
    """
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(
            f"registry must be a MetricsRegistry, "
            f"got {type(registry).__name__}"
        )
    families: dict[str, tuple[str, list[str]]] = {}
    for metric in sorted(
        registry, key=lambda m: (m.name, str(sorted(m.labels.items())))
    ):
        if not metric.name.startswith(prefix):
            continue
        name = mangle_metric_name(metric.name)
        if isinstance(metric, Counter):
            kind, lines = families.setdefault(name, ("counter", []))
            lines.append(
                f"{name}_total{_labels_clause(metric.labels)} "
                f"{_fmt_value(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            kind, lines = families.setdefault(name, ("histogram", []))
            lines.extend(_histogram_lines(name, metric.labels, metric))
        elif isinstance(metric, Gauge):
            kind, lines = families.setdefault(name, ("gauge", []))
            lines.append(
                f"{name}{_labels_clause(metric.labels)} "
                f"{_fmt_value(metric.value)}"
            )
        else:  # pragma: no cover - registry only holds the three kinds
            raise TypeError(f"unknown metric type {type(metric).__name__}")
    out: list[str] = []
    for name in sorted(families):
        kind, lines = families[name]
        out.append(f"# TYPE {name} {kind}")
        out.extend(lines)
    out.append("# EOF")
    return "\n".join(out) + "\n"


def render_snapshot_openmetrics(
    snapshot: Mapping[str, Any],
    extra_labels: Mapping[str, Any] | None = None,
) -> str:
    """Render a flat registry snapshot (manifest ``metrics``) as OpenMetrics.

    Scalar values render as ``unknown``-typed samples (a snapshot does
    not record whether the source was a counter or a gauge); histogram
    summary dicts render as ``summary`` families — ``quantile`` series
    for p50/p95/p99 plus ``_sum``/``_count``.  ``extra_labels`` lands on
    every sample (e.g. ``experiment="fig13"`` when concatenating
    expositions across manifests).
    """
    extra = dict(extra_labels or {})
    families: dict[str, tuple[str, list[str]]] = {}
    for key in sorted(snapshot):
        raw_name, labels = parse_snapshot_key(key)
        value = snapshot[key]
        name = mangle_metric_name(raw_name)
        labels = {**labels, **extra}
        if isinstance(value, Mapping):
            kind, lines = families.setdefault(name, ("summary", []))
            for q, pct in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                if pct in value:
                    ql = dict(labels)
                    ql["quantile"] = q
                    lines.append(
                        f"{name}{_labels_clause(ql)} "
                        f"{_fmt_value(value[pct])}"
                    )
            lines.append(
                f"{name}_sum{_labels_clause(labels)} "
                f"{_fmt_value(value.get('sum', 0.0))}"
            )
            lines.append(
                f"{name}_count{_labels_clause(labels)} "
                f"{_fmt_value(value.get('count', 0))}"
            )
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            continue  # snapshot rows may carry strings; not samples
        else:
            kind, lines = families.setdefault(name, ("unknown", []))
            lines.append(
                f"{name}{_labels_clause(labels)} {_fmt_value(value)}"
            )
    out: list[str] = []
    for name in sorted(families):
        kind, lines = families[name]
        out.append(f"# TYPE {name} {kind}")
        out.extend(lines)
    out.append("# EOF")
    return "\n".join(out) + "\n"


def snapshots_to_openmetrics(
    snapshots: Mapping[str, Mapping[str, Any]],
) -> str:
    """Render per-scheme ``simulation_end`` snapshots as one exposition.

    ``snapshots`` is what :func:`repro.obs.replay.metrics_snapshots`
    returns for a trace: scheme -> the ``METRIC_SNAPSHOT_KEYS`` row.
    Numeric entries become ``sim_<metric>`` samples labelled by
    ``scheme`` (and ``engine`` when present).
    """
    flat: dict[str, Any] = {}
    for scheme, row in snapshots.items():
        labels = {"scheme": row.get("scheme", scheme)}
        if row.get("engine") is not None:
            labels["engine"] = row["engine"]
        for metric, value in row.items():
            if metric in ("scheme", "engine"):
                continue
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            rendered = ",".join(
                f"{k}={v}" for k, v in sorted(labels.items())
            )
            flat[f"sim.{metric}{{{rendered}}}"] = value
    return render_snapshot_openmetrics(flat)


# -- parse-check -----------------------------------------------------------

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)(?: (?P<ts>[0-9.e+-]+))?$"
)
_LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"(?:,|$)'
)
_VALID_TYPES = frozenset(
    {"counter", "gauge", "histogram", "summary", "unknown", "info",
     "stateset", "gaugehistogram"}
)


def _unescape(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        c = value[i]
        if c == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n"}.get(nxt, nxt))
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def parse_openmetrics(text: str) -> dict[str, dict[str, Any]]:
    """Validate and parse an exposition; the test suite's parse-check.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value)]}}``.
    Raises :class:`ValueError` on malformed lines, an unknown ``# TYPE``,
    a sample preceding its family's type declaration being re-typed, or a
    missing ``# EOF`` terminator.
    """
    families: dict[str, dict[str, Any]] = {}
    lines = text.split("\n")
    saw_eof = False
    for lineno, line in enumerate(lines, 1):
        if saw_eof and line:
            raise ValueError(f"line {lineno}: content after # EOF")
        if not line:
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            _, _, fam, kind = parts
            if kind not in _VALID_TYPES:
                raise ValueError(
                    f"line {lineno}: unknown metric type {kind!r}"
                )
            if fam in families and families[fam]["type"] != kind:
                raise ValueError(f"line {lineno}: family {fam!r} re-typed")
            families.setdefault(fam, {"type": kind, "samples": []})
            continue
        if line.startswith("#"):
            if not line.startswith(("# HELP ", "# UNIT ")):
                raise ValueError(f"line {lineno}: unexpected comment")
            continue
        m = _SAMPLE_LINE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = m.group("name")
        labels: dict[str, str] = {}
        body = m.group("labels")
        if body:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(body):
                if pair.start() != consumed:
                    raise ValueError(
                        f"line {lineno}: malformed labels {body!r}"
                    )
                labels[pair.group("name")] = _unescape(pair.group("value"))
                consumed = pair.end()
            if consumed != len(body):
                raise ValueError(f"line {lineno}: malformed labels {body!r}")
        raw = m.group("value")
        try:
            value = float(raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric sample value {raw!r}"
            ) from None
        base = name
        for suffix in ("_total", "_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        family = families.setdefault(
            base, {"type": "unknown", "samples": []}
        )
        family["samples"].append((name, labels, value))
    if not saw_eof:
        raise ValueError("exposition is missing the # EOF terminator")
    return families


# -- per-window rates ------------------------------------------------------


def _scalarize(snapshot: Mapping[str, Any]) -> dict[str, float]:
    """Flatten a snapshot to comparable scalars.

    Histogram summary dicts contribute their monotone ``count``/``sum``
    components (percentiles are not rates); plain numbers pass through.
    """
    out: dict[str, float] = {}
    for key, value in snapshot.items():
        if isinstance(value, Mapping):
            out[f"{key}.count"] = float(value.get("count", 0))
            out[f"{key}.sum"] = float(value.get("sum", 0.0))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[key] = float(value)
    return out


class SnapshotDeltaSource:
    """Cumulative snapshots in, per-window rates out.

    Wraps a snapshot producer — by default the ambient registry's
    :meth:`~MetricsRegistry.snapshot` on the wall clock — and differences
    consecutive observations::

        src = SnapshotDeltaSource()          # wall-time scrapes
        ...                                  # run things
        window = src.delta()                 # {"t", "dt", "rates"}

    For sim-time windows pass explicit snapshots and timestamps::

        src = SnapshotDeltaSource(clock=None)
        src.delta(metrics_at_t0, t=0.0)      # primes the baseline
        window = src.delta(metrics_at_t1, t=30.0)

    Rates are per second over the window; keys are the snapshot's flat
    keys (histogram dicts contribute ``.count``/``.sum`` sub-rates).
    Decreasing values (a registry reset) report a rate of 0.0 for that
    key rather than a negative rate.  The first call returns an empty
    rate map (``dt`` 0.0) — it only primes the baseline.
    """

    def __init__(
        self,
        source: MetricsRegistry | Callable[[], Mapping[str, Any]] | None = None,
        clock: Callable[[], float] | None = time.monotonic,
        prefix: str = "",
    ) -> None:
        if source is None:
            from repro.obs.metrics import get_registry

            self._snap: Callable[[], Mapping[str, Any]] = (
                lambda: get_registry().snapshot(prefix)
            )
        elif isinstance(source, MetricsRegistry):
            self._snap = lambda: source.snapshot(prefix)
        elif callable(source):
            self._snap = source
        else:
            raise TypeError(
                "source must be a MetricsRegistry, a callable, or None; "
                f"got {type(source).__name__}"
            )
        self._clock = clock
        self._prev: dict[str, float] | None = None
        self._prev_t: float | None = None

    def delta(
        self,
        snapshot: Mapping[str, Any] | None = None,
        t: float | None = None,
    ) -> dict[str, Any]:
        """One window: rates since the previous :meth:`delta` call."""
        if snapshot is None:
            snapshot = self._snap()
        if t is None:
            if self._clock is None:
                raise ValueError(
                    "this SnapshotDeltaSource has no clock; pass t= "
                    "explicitly (sim-time mode)"
                )
            t = self._clock()
        t = float(t)
        current = _scalarize(snapshot)
        prev, prev_t = self._prev, self._prev_t
        self._prev, self._prev_t = current, t
        if prev is None or prev_t is None:
            return {"t": t, "dt": 0.0, "rates": {}}
        dt = t - prev_t
        if dt <= 0:
            raise ValueError(
                f"non-increasing window timestamp: {prev_t} -> {t}"
            )
        rates = {
            key: max(value - prev.get(key, 0.0), 0.0) / dt
            for key, value in current.items()
        }
        return {"t": t, "dt": dt, "rates": rates}


def timeline_rates(section: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Per-window byte rates out of a finalized timeline section.

    The sim-time counterpart of :class:`SnapshotDeltaSource`: the
    timeline machinery already buckets the engine's cumulative byte
    vector into windows, so each retained window yields one row with the
    cluster-wide ``bytes_per_s`` and the busiest server's rate/share.
    """
    window_s = float(section.get("window_s") or 0.0)
    if window_s <= 0:
        return []
    rows = []
    for w, served in enumerate(section.get("bytes", [])):
        total = float(sum(served))
        peak = max(served) if served else 0.0
        rows.append(
            {
                "window": w,
                "t_start": w * window_s,
                "bytes_per_s": total / window_s,
                "peak_server_bytes_per_s": float(peak) / window_s,
                "peak_share": float(peak) / total if total else 0.0,
            }
        )
    return rows
