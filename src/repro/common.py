"""Shared value types and unit helpers for the SP-Cache reproduction.

Everything population-scale (file sizes, request rates, loads) is kept in
NumPy arrays so the hot paths downstream (latency model evaluation, event
pre-sampling) stay vectorized, per the HPC-Python idiom of avoiding
per-element Python loops.

Units
-----
Sizes are in **bytes**, bandwidths in **bytes/second**, rates in
**requests/second**, times in **seconds** throughout the code base.  The
constants :data:`KB`, :data:`MB`, :data:`GB`, :data:`Mbps`, :data:`Gbps`
convert the paper's figures into these units.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "KB",
    "MB",
    "GB",
    "Mbps",
    "Gbps",
    "FilePopulation",
    "ClusterSpec",
    "make_rng",
    "validate_probability_vector",
    "validate_server_count",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Network bandwidths: the paper quotes link speeds in bits/second.
Mbps = 1e6 / 8.0
Gbps = 1e9 / 8.0


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged) so that library entry points can take a
    single ``seed`` argument and forward it freely.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def validate_server_count(n: int, *, what: str = "n_servers") -> int:
    """Validate a server/worker count; returns it as a plain ``int``.

    The one shared gate for every layer that sizes itself off the
    cluster — :class:`ClusterSpec`, the policy constructors, the store
    master, the partitioner — so the error message is consistent
    everywhere: ``ValueError: <what> must be a positive integer``.
    """
    if isinstance(n, bool) or not isinstance(n, (int, np.integer)):
        raise ValueError(
            f"{what} must be a positive integer, got {type(n).__name__}"
        )
    if n <= 0:
        raise ValueError(f"{what} must be a positive integer, got {n}")
    return int(n)


def validate_probability_vector(p: np.ndarray, *, name: str = "popularity") -> np.ndarray:
    """Validate and renormalize a probability vector.

    Raises ``ValueError`` on negative entries or a zero sum; returns a fresh
    float64 array normalized to sum exactly to 1 (within float rounding).
    """
    p = np.asarray(p, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {p.shape}")
    if p.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(p < 0) or not np.all(np.isfinite(p)):
        raise ValueError(f"{name} entries must be finite and non-negative")
    total = p.sum()
    if total <= 0:
        raise ValueError(f"{name} must have positive mass")
    return p / total


@dataclass(frozen=True)
class FilePopulation:
    """A set of cached files with sizes and access statistics.

    Attributes
    ----------
    sizes:
        File sizes in bytes, shape ``(n_files,)``.
    popularities:
        Access probabilities ``P_i = lambda_i / sum_j lambda_j`` (Eq. 4 in the
        paper); always normalized to sum to 1.
    total_rate:
        Aggregate request arrival rate ``sum_i lambda_i`` in requests/second.
    """

    sizes: np.ndarray
    popularities: np.ndarray
    total_rate: float = 1.0

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes, dtype=np.float64)
        if sizes.ndim != 1 or sizes.size == 0:
            raise ValueError("sizes must be a non-empty 1-D array")
        if np.any(sizes <= 0) or not np.all(np.isfinite(sizes)):
            raise ValueError("file sizes must be positive and finite")
        pops = validate_probability_vector(np.asarray(self.popularities))
        if pops.shape != sizes.shape:
            raise ValueError(
                f"sizes {sizes.shape} and popularities {pops.shape} must align"
            )
        if not (self.total_rate > 0 and np.isfinite(self.total_rate)):
            raise ValueError("total_rate must be positive and finite")
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "popularities", pops)

    @property
    def n_files(self) -> int:
        return int(self.sizes.size)

    @property
    def rates(self) -> np.ndarray:
        """Per-file arrival rates ``lambda_i`` (requests/second)."""
        return self.popularities * self.total_rate

    @property
    def loads(self) -> np.ndarray:
        """Expected load ``L_i = S_i * P_i`` (bytes, Eq. 1's load measure)."""
        return self.sizes * self.popularities

    @property
    def total_bytes(self) -> float:
        return float(self.sizes.sum())

    def with_rate(self, total_rate: float) -> "FilePopulation":
        """Same files, different aggregate request rate."""
        return replace(self, total_rate=float(total_rate))

    def with_popularities(self, popularities: np.ndarray) -> "FilePopulation":
        """Same files, new popularity vector (e.g. after a popularity shift)."""
        return replace(self, popularities=np.asarray(popularities, dtype=np.float64))

    @staticmethod
    def uniform_sizes(
        n_files: int,
        size: float,
        popularities: np.ndarray,
        total_rate: float = 1.0,
    ) -> "FilePopulation":
        """Population of ``n_files`` equal-sized files (paper's EC2 setups)."""
        if n_files <= 0:
            raise ValueError("n_files must be positive")
        return FilePopulation(
            sizes=np.full(n_files, float(size)),
            popularities=popularities,
            total_rate=total_rate,
        )


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a caching cluster.

    Attributes
    ----------
    n_servers:
        Number of cache servers ``N``.
    bandwidth:
        Per-server network bandwidth in bytes/second.  Either a scalar
        (homogeneous cluster, the common case in the paper) or an array of
        shape ``(n_servers,)``.
    capacity:
        Per-server cache capacity in bytes (``inf`` = unbounded, used for the
        latency experiments where the paper provisions enough memory).
    client_bandwidth:
        Aggregate bandwidth one client can pull across all parallel partition
        streams of a single read, in bytes/second.  Defaults to 3x the mean
        server NIC: the paper's iperf pairs measured 1 Gbps on a *single*
        stream, but its measured latencies require multi-stream reads to run
        ~3x faster (e.g. selective replication — all single-stream — lands
        3.3-3.8x behind SP-Cache in Fig. 15).  The cap is why splitting a
        file ever-finer eventually stops paying: a lone read bottoms out at
        ``S / client_bandwidth`` no matter how large ``k`` grows, so further
        partitions only buy load balancing — the physical origin of the
        paper's elbow.
    """

    n_servers: int
    bandwidth: float | np.ndarray = Gbps
    capacity: float = float("inf")
    client_bandwidth: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "n_servers", validate_server_count(self.n_servers)
        )
        bw = np.broadcast_to(
            np.asarray(self.bandwidth, dtype=np.float64), (self.n_servers,)
        ).copy()
        if np.any(bw <= 0) or not np.all(np.isfinite(bw)):
            raise ValueError("bandwidths must be positive and finite")
        if not self.capacity > 0:
            raise ValueError("capacity must be positive")
        if self.client_bandwidth is not None and not self.client_bandwidth > 0:
            raise ValueError("client_bandwidth must be positive")
        object.__setattr__(self, "bandwidth", bw)

    @property
    def bandwidths(self) -> np.ndarray:
        """Per-server bandwidth array ``B_s`` of shape ``(n_servers,)``."""
        return self.bandwidth

    @property
    def effective_client_bandwidth(self) -> float:
        """Client-side aggregate cap; defaults to 3x the mean server NIC."""
        if self.client_bandwidth is not None:
            return float(self.client_bandwidth)
        return 3.0 * float(self.bandwidths.mean())

    @property
    def total_capacity(self) -> float:
        return self.capacity * self.n_servers

    def with_capacity(self, capacity: float) -> "ClusterSpec":
        return replace(self, capacity=float(capacity))

    def with_bandwidth(self, bandwidth: float | np.ndarray) -> "ClusterSpec":
        return replace(self, bandwidth=bandwidth)


# Default cluster used across the paper's EC2 experiments: 30 cache servers,
# 1 Gbps NICs (r3.2xlarge measurement in Sec. 7.1), 10 GB of cache each.
PAPER_CLUSTER = ClusterSpec(n_servers=30, bandwidth=Gbps, capacity=10 * GB)
