"""SP-Cache's core algorithms (the paper's contribution, Secs. 5-6).

* :mod:`repro.core.partitioner` — Eq. (1): ``k_i = ceil(alpha * S_i * P_i)``
  with the distinct-server constraint;
* :mod:`repro.core.placement` — random and greedy least-loaded partition
  placement shared by the analytical model and the policies, plus the
  hash-mod and consistent-hash-ring membership baselines;
* :mod:`repro.core.latency_model` — the fork-join M/G/1 mean-latency upper
  bound of Eqs. (4)-(13);
* :mod:`repro.core.convex` — exact 1-D solver for the Eq. (9) inner
  minimisation (replacing CVXPY);
* :mod:`repro.core.scale_factor` — Algorithm 1's exponential elbow search;
* :mod:`repro.core.repartition` — Algorithm 2's parallel repartition plan
  plus its timing model (Figs. 16-18);
* :mod:`repro.core.theory` — Theorem 1's load-variance comparison.
"""

from repro.core.convex import fork_join_upper_bound
from repro.core.latency_model import ForkJoinModel, ModelEvaluation
from repro.core.online import AdjustOp, OnlineAdjuster
from repro.core.partitioner import partition_counts
from repro.core.placement import (
    HashRing,
    hash_mod_assignment,
    place_hash_mod,
    place_on_ring,
    place_partitions_greedy,
    place_partitions_random,
    relocated_fraction,
    ring_assignment,
)
from repro.core.repartition import (
    EpochRepartitionPlan,
    RepartitionPlan,
    plan_epoch_repartition,
    plan_repartition,
    repartition_time_parallel,
    repartition_time_sequential,
)
from repro.core.scale_factor import ScaleFactorSearch, optimal_scale_factor
from repro.core.subfile import SegmentedFile, subfile_partition
from repro.core.theory import (
    ec_load_variance,
    sp_load_variance,
    variance_ratio,
    variance_ratio_limit,
)

__all__ = [
    "AdjustOp",
    "EpochRepartitionPlan",
    "ForkJoinModel",
    "HashRing",
    "ModelEvaluation",
    "OnlineAdjuster",
    "RepartitionPlan",
    "ScaleFactorSearch",
    "SegmentedFile",
    "subfile_partition",
    "ec_load_variance",
    "fork_join_upper_bound",
    "hash_mod_assignment",
    "optimal_scale_factor",
    "partition_counts",
    "place_hash_mod",
    "place_on_ring",
    "place_partitions_greedy",
    "place_partitions_random",
    "plan_epoch_repartition",
    "plan_repartition",
    "relocated_fraction",
    "ring_assignment",
    "repartition_time_parallel",
    "repartition_time_sequential",
    "sp_load_variance",
    "variance_ratio",
    "variance_ratio_limit",
]
