"""Partition placement: SP-Cache's strategies plus membership baselines.

:mod:`repro.core.placement.strategies`
    Random distinct-server placement (Sec. 5.1's default) and the greedy
    least-loaded placement Algorithm 2 uses when re-placing repartitioned
    files — re-exported here so ``from repro.core.placement import
    place_partitions_random`` keeps working exactly as before the
    package split.
:mod:`repro.core.placement.hash_ring`
    The membership-driven baselines SP-Cache never evaluated: hash-mod
    (``server = hash(key) % N`` — ~(N-1)/N of keys move when N changes)
    and a consistent-hash ring with virtual nodes (~1/N move per
    single-server change).  ``fig_churn`` races both against the
    epoch-aware repartition planner.
"""

from repro.core.placement.hash_ring import (
    HashRing,
    hash_mod_assignment,
    place_hash_mod,
    place_on_ring,
    relocated_fraction,
    ring_assignment,
)
from repro.core.placement.strategies import (
    extend_placement,
    place_partitions_greedy,
    place_partitions_random,
    placement_server_loads,
)

__all__ = [
    "HashRing",
    "extend_placement",
    "hash_mod_assignment",
    "place_hash_mod",
    "place_on_ring",
    "place_partitions_greedy",
    "place_partitions_random",
    "placement_server_loads",
    "relocated_fraction",
    "ring_assignment",
]
