"""Partition placement strategies.

Random distinct-server placement is SP-Cache's default (Sec. 5.1: once
per-partition loads are uniform, random placement suffices); greedy
least-loaded placement is what Algorithm 2 uses when re-placing repartitioned
files.  Both return a ragged structure: ``servers_of[i]`` is the array of
distinct server ids caching file ``i``'s partitions.
"""

from __future__ import annotations

import numpy as np

from repro.common import make_rng

__all__ = [
    "place_partitions_random",
    "place_partitions_greedy",
    "extend_placement",
    "placement_server_loads",
]


def place_partitions_random(
    ks: np.ndarray,
    n_servers: int,
    seed: int | np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Place each file's ``k_i`` partitions on ``k_i`` distinct random servers."""
    ks = np.asarray(ks, dtype=np.int64)
    if np.any(ks < 1):
        raise ValueError("every file needs at least one partition")
    if np.any(ks > n_servers):
        raise ValueError("k_i may not exceed the server count")
    rng = make_rng(seed)
    # rng.choice without replacement is O(N) per call; permutation slicing
    # keeps it cheap for many small k_i over a moderate N.
    return [rng.permutation(n_servers)[:k] for k in ks]


def place_partitions_greedy(
    ks: np.ndarray,
    loads: np.ndarray,
    n_servers: int,
    initial_server_loads: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Greedy least-loaded placement (Algorithm 2, lines 10-15).

    Files are processed in descending load order (largest first gives the
    classic LPT-style balance); each file's partitions go to the ``k_i``
    least-loaded servers, each receiving ``L_i / k_i`` additional load.
    ``initial_server_loads`` carries the load of files kept in place.
    """
    ks = np.asarray(ks, dtype=np.int64)
    loads = np.asarray(loads, dtype=np.float64)
    if ks.shape != loads.shape:
        raise ValueError("ks and loads must align")
    if np.any(ks > n_servers):
        raise ValueError("k_i may not exceed the server count")
    server_loads = (
        np.zeros(n_servers)
        if initial_server_loads is None
        else np.asarray(initial_server_loads, dtype=np.float64).copy()
    )
    if server_loads.shape != (n_servers,):
        raise ValueError("initial_server_loads must have one entry per server")

    servers_of: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * ks.size
    for i in np.argsort(-loads, kind="stable"):
        k = int(ks[i])
        chosen = np.argpartition(server_loads, k - 1)[:k]
        server_loads[chosen] += loads[i] / k
        servers_of[i] = np.sort(chosen)
    return servers_of


def extend_placement(
    servers_of: list[np.ndarray],
    new_ks: np.ndarray,
    n_servers: int,
    seed: int | np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Grow/shrink an existing placement to new partition counts.

    Files whose ``k_i`` increased gain partitions on fresh random servers
    (distinct from those they already use); files whose count decreased drop
    their trailing partitions.  Existing partitions never move — this is the
    placement discipline of Algorithm 1's search (one placement drawn up
    front, reused across iterations) and the no-noise property the 1 % stop
    rule relies on.
    """
    new_ks = np.asarray(new_ks, dtype=np.int64)
    if len(servers_of) != new_ks.size:
        raise ValueError("servers_of must align with new_ks")
    if np.any(new_ks > n_servers):
        raise ValueError("k_i may not exceed the server count")
    rng = make_rng(seed)
    out: list[np.ndarray] = []
    for old, k in zip(servers_of, new_ks):
        k = int(k)
        if k <= old.size:
            out.append(old[:k])
            continue
        free = np.setdiff1d(np.arange(n_servers), old, assume_unique=False)
        extra = rng.permutation(free)[: k - old.size]
        out.append(np.concatenate([old, extra]))
    return out


def placement_server_loads(
    servers_of: list[np.ndarray],
    loads: np.ndarray,
    n_servers: int,
) -> np.ndarray:
    """Expected per-server load implied by a placement.

    Each server holding one of file ``i``'s ``k_i`` partitions carries
    ``L_i / k_i``; this is the quantity Fig. 12 and Fig. 18 histogram.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if len(servers_of) != loads.size:
        raise ValueError("one server list per file required")
    out = np.zeros(n_servers)
    for i, servers in enumerate(servers_of):
        if servers.size:
            out[servers] += loads[i] / servers.size
    return out
