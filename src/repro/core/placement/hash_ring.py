"""Consistent-hash-ring and hash-mod placement baselines.

SP-Cache's Algorithm 2 re-plans placement when *popularity* shifts; it
says nothing about *membership* shifts.  The classic pair of baselines
for membership-driven placement (SNIPPETS.md snippet 1, the zeekdb
sharding design):

* **hash-mod** — ``server = hash(key) % N``.  Trivial and perfectly
  uniform, but resizing from ``N`` to ``N + 1`` remaps ``N / (N + 1)``
  of all keys (~75 % at N=3→4): the cluster effectively cold-starts on
  every topology change.
* **consistent-hash ring** — servers own arcs of a 2^64 hash circle via
  ``vnodes`` virtual tokens each; a key lands on the first token
  clockwise of its hash.  Adding or removing one server only moves the
  keys on the arcs it gains or cedes — ~1/N of the keyspace — at the
  cost of slightly lumpier balance (more vnodes, smoother arcs).

Both use a keyed BLAKE2b hash, so assignments are deterministic across
processes and runs (Python's builtin ``hash`` is salted per process).
Server ids here are the *stable* ids of
:class:`repro.cluster.topology.ClusterTopology` — assignments survive
epoch changes, which is exactly what :func:`relocated_fraction` measures
across them.
"""

from __future__ import annotations

import bisect
import hashlib

import numpy as np

__all__ = [
    "HashRing",
    "hash_mod_assignment",
    "place_hash_mod",
    "place_on_ring",
    "relocated_fraction",
    "ring_assignment",
]

#: Virtual nodes per server: enough to keep arc-length variance low
#: without making ring construction noticeable at cluster scale.
DEFAULT_VNODES = 96


def _hash64(data: bytes) -> int:
    """Stable 64-bit hash (BLAKE2b) — process-salt-free, unlike ``hash``."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


def _key_point(key: int) -> int:
    return _hash64(b"k:%d" % int(key))


class HashRing:
    """A consistent-hash ring over stable server ids with virtual nodes.

    ``servers_for(key, k)`` walks clockwise collecting ``k`` *distinct*
    servers — the ring-native analogue of the distinct-server constraint
    SP-Cache's partition placement obeys.
    """

    def __init__(self, server_ids=(), *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._points: list[int] = []  # sorted vnode hash points
        self._owner: dict[int, int] = {}  # hash point -> server id
        self._servers: set[int] = set()
        for sid in server_ids:
            self.add_server(sid)

    def __len__(self) -> int:
        return len(self._servers)

    def __contains__(self, server_id: int) -> bool:
        return int(server_id) in self._servers

    @property
    def server_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._servers))

    def _tokens(self, server_id: int) -> list[int]:
        return [
            _hash64(b"s:%d:%d" % (int(server_id), v))
            for v in range(self.vnodes)
        ]

    def add_server(self, server_id: int) -> None:
        server_id = int(server_id)
        if server_id in self._servers:
            raise ValueError(f"server {server_id} already on the ring")
        self._servers.add(server_id)
        for point in self._tokens(server_id):
            # Token collisions across servers are astronomically rare in
            # 64 bits; keep the first owner deterministic if one happens.
            if point in self._owner:
                continue
            bisect.insort(self._points, point)
            self._owner[point] = server_id

    def remove_server(self, server_id: int) -> None:
        server_id = int(server_id)
        if server_id not in self._servers:
            raise ValueError(f"server {server_id} is not on the ring")
        self._servers.remove(server_id)
        for point in self._tokens(server_id):
            if self._owner.get(point) == server_id:
                del self._owner[point]
                idx = bisect.bisect_left(self._points, point)
                del self._points[idx]

    def server_for(self, key: int) -> int:
        """The server owning ``key``: first vnode clockwise of its hash."""
        if not self._points:
            raise ValueError("the ring has no servers")
        idx = bisect.bisect_right(self._points, _key_point(key))
        if idx == len(self._points):
            idx = 0
        return self._owner[self._points[idx]]

    def servers_for(self, key: int, k: int) -> np.ndarray:
        """``k`` distinct servers clockwise from ``key``'s hash point."""
        if k > len(self._servers):
            raise ValueError(
                f"cannot pick {k} distinct servers from a ring of "
                f"{len(self._servers)}"
            )
        start = bisect.bisect_right(self._points, _key_point(key))
        chosen: list[int] = []
        seen: set[int] = set()
        n_points = len(self._points)
        for step in range(n_points):
            sid = self._owner[self._points[(start + step) % n_points]]
            if sid not in seen:
                seen.add(sid)
                chosen.append(sid)
                if len(chosen) == k:
                    break
        return np.sort(np.asarray(chosen, dtype=np.int64))

    def assign(self, keys) -> np.ndarray:
        """Vectorized :meth:`server_for` over an iterable of keys."""
        return np.asarray(
            [self.server_for(int(key)) for key in np.asarray(keys).ravel()],
            dtype=np.int64,
        )


def ring_assignment(
    keys, server_ids, *, vnodes: int = DEFAULT_VNODES
) -> np.ndarray:
    """One-shot ring assignment: key -> owning server (stable ids)."""
    return HashRing(server_ids, vnodes=vnodes).assign(keys)


def hash_mod_assignment(keys, server_ids) -> np.ndarray:
    """Hash-mod assignment: ``servers[hash(key) % N]`` over stable ids.

    The id *list* is what matters: resizing it remaps nearly every key,
    which is the failure mode this baseline exists to demonstrate.
    """
    ids = np.sort(np.asarray(list(server_ids), dtype=np.int64))
    if ids.size == 0:
        raise ValueError("hash_mod_assignment needs at least one server")
    return np.asarray(
        [
            ids[_key_point(int(key)) % ids.size]
            for key in np.asarray(keys).ravel()
        ],
        dtype=np.int64,
    )


def place_on_ring(
    ks: np.ndarray, server_ids, *, vnodes: int = DEFAULT_VNODES
) -> list[np.ndarray]:
    """Ragged placement (one array of distinct servers per file) where
    file ``i``'s ``k_i`` partitions follow the ring walk from its hash."""
    ring = HashRing(server_ids, vnodes=vnodes)
    ks = np.asarray(ks, dtype=np.int64)
    if np.any(ks < 1):
        raise ValueError("every file needs at least one partition")
    return [ring.servers_for(i, int(k)) for i, k in enumerate(ks)]


def place_hash_mod(ks: np.ndarray, server_ids) -> list[np.ndarray]:
    """Ragged hash-mod placement: ``k_i`` distinct servers walked from
    ``hash(i) % N`` (wrap-around over the sorted id list)."""
    ids = np.sort(np.asarray(list(server_ids), dtype=np.int64))
    ks = np.asarray(ks, dtype=np.int64)
    if np.any(ks < 1):
        raise ValueError("every file needs at least one partition")
    if np.any(ks > ids.size):
        raise ValueError("k_i may not exceed the server count")
    out: list[np.ndarray] = []
    for i, k in enumerate(ks):
        start = _key_point(i) % ids.size
        picks = ids[(start + np.arange(int(k))) % ids.size]
        out.append(np.sort(picks))
    return out


def relocated_fraction(old: np.ndarray, new: np.ndarray) -> float:
    """Fraction of keys whose owner changed between two assignments.

    The head-to-head resize metric: ~``1/N`` for a ring gaining one of
    ``N+1`` servers, ~``N/(N+1)`` for hash-mod.
    """
    old = np.asarray(old)
    new = np.asarray(new)
    if old.shape != new.shape:
        raise ValueError("assignments must cover the same keys")
    if old.size == 0:
        return 0.0
    return float(np.mean(old != new))
