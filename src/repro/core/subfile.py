"""Finer-grained partition within a file (Sec. 8, "Finer-Grained Partition").

For structured formats (Parquet row groups, column chunks) the parts of one
file can have very different popularities; splitting the *file* uniformly
then wastes fan-out on its cold ranges.  The paper sketches extending
selective partition inside the file: give each range a partition count
proportional to its own load.

:func:`subfile_partition` implements that: given per-segment sizes and
per-segment access probabilities within the file, it applies Eq. (1) at
segment granularity (the file's own ``alpha`` share redistributes by
segment load) and returns per-segment partition counts whose total is
bounded by the file's budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import validate_probability_vector, validate_server_count

__all__ = ["SegmentedFile", "subfile_partition"]


@dataclass(frozen=True)
class SegmentedFile:
    """A structured file: segments with sizes and internal popularity."""

    segment_sizes: np.ndarray  # bytes per segment
    segment_popularities: np.ndarray  # access probability within the file

    def __post_init__(self) -> None:
        sizes = np.asarray(self.segment_sizes, dtype=np.float64)
        if sizes.ndim != 1 or sizes.size == 0 or np.any(sizes <= 0):
            raise ValueError("segment sizes must be positive and 1-D")
        pops = validate_probability_vector(
            np.asarray(self.segment_popularities), name="segment popularity"
        )
        if pops.shape != sizes.shape:
            raise ValueError("segments and popularities must align")
        object.__setattr__(self, "segment_sizes", sizes)
        object.__setattr__(self, "segment_popularities", pops)

    @property
    def n_segments(self) -> int:
        return int(self.segment_sizes.size)

    @property
    def size(self) -> float:
        return float(self.segment_sizes.sum())

    @property
    def segment_loads(self) -> np.ndarray:
        """Per-segment load contribution (bytes x internal popularity)."""
        return self.segment_sizes * self.segment_popularities


def subfile_partition(
    file: SegmentedFile,
    file_popularity: float,
    alpha: float,
    n_servers: int,
) -> np.ndarray:
    """Per-segment partition counts under Eq. (1) at segment granularity.

    Segment ``j`` of a file read with probability ``P_i`` and internal
    probability ``q_j`` carries load ``P_i * q_j * s_j``; it receives
    ``ceil(alpha * load_j)`` partitions, clamped to ``[1, n_servers]``.
    A uniform-popularity file degenerates to the plain Eq. (1) count
    distributed evenly across its segments.
    """
    if not 0 < file_popularity <= 1:
        raise ValueError("file_popularity must be in (0, 1]")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    n_servers = validate_server_count(n_servers)
    loads = file_popularity * file.segment_loads
    ks = np.ceil(alpha * loads).astype(np.int64)
    return np.clip(ks, 1, n_servers)
