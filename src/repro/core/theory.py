"""Theorem 1: per-server load variance, SP-Cache vs EC-Cache.

With random placement, a given server carries file ``i``'s partition-load
``L_i / k_i`` with probability ``k_i / N`` (SP-Cache) or serves one of
EC-Cache's ``k + 1`` late-bound reads with probability ``(k + 1) / N``.
Summing the resulting Bernoulli variances gives closed forms; their ratio
tends to ``(alpha / k) * sum L_i^2 / sum L_i`` as ``N`` grows, which under
heavy skew is ``O(L_max)`` — the paper's headline balance advantage.

:func:`monte_carlo_load_variance` verifies the closed forms empirically by
sampling placements, which is what the Theorem 1 bench does.
"""

from __future__ import annotations

import numpy as np

from repro.common import make_rng
from repro.core.partitioner import partition_counts

__all__ = [
    "sp_load_variance",
    "ec_load_variance",
    "variance_ratio",
    "variance_ratio_limit",
    "monte_carlo_load_variance",
]


def sp_load_variance(loads: np.ndarray, alpha: float, n_servers: int) -> float:
    """Exact ``Var(X^SP)`` for one server under random placement."""
    loads = np.asarray(loads, dtype=np.float64)
    ks = partition_counts(loads, alpha, n_servers=n_servers).astype(np.float64)
    p = ks / n_servers
    return float(np.sum((loads / ks) ** 2 * p * (1 - p)))


def ec_load_variance(
    loads: np.ndarray, k: int, n: int, n_servers: int
) -> float:
    """Exact ``Var(X^EC)`` for a uniform (k, n) code with late binding."""
    if not 1 <= k <= n <= n_servers:
        raise ValueError("require 1 <= k <= n <= n_servers")
    loads = np.asarray(loads, dtype=np.float64)
    p = (k + 1) / n_servers
    return float(np.sum((loads / k) ** 2 * p * (1 - p)))


def variance_ratio(
    loads: np.ndarray, alpha: float, k: int, n: int, n_servers: int
) -> float:
    """Exact ``Var(X^EC) / Var(X^SP)`` (finite-N version of Eq. 2)."""
    sp = sp_load_variance(loads, alpha, n_servers)
    if sp == 0:
        return np.inf
    return ec_load_variance(loads, k, n, n_servers) / sp


def variance_ratio_limit(loads: np.ndarray, alpha: float, k: int) -> float:
    """Eq. (2)'s large-N limit: ``(alpha / k) * sum L_i^2 / sum L_i``."""
    loads = np.asarray(loads, dtype=np.float64)
    total = loads.sum()
    if total == 0:
        raise ValueError("loads must have positive mass")
    return float(alpha / k * np.sum(loads**2) / total)


def monte_carlo_load_variance(
    loads: np.ndarray,
    ks: np.ndarray,
    n_servers: int,
    serve_probability_extra: int = 0,
    n_trials: int = 2000,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Empirical ``Var(X)`` of server 0's load over random placements.

    ``serve_probability_extra`` is 0 for SP-Cache (a server holding a
    partition always carries its share) and 1 for EC-Cache (late binding
    touches ``k + 1`` of the ``n`` placed shards, making the per-server
    serve probability ``(k + 1) / N``; we model it directly as a Bernoulli
    over ``k + 1`` random distinct servers).
    """
    loads = np.asarray(loads, dtype=np.float64)
    ks = np.asarray(ks, dtype=np.int64)
    if loads.shape != ks.shape:
        raise ValueError("loads and ks must align")
    rng = make_rng(seed)
    active = ks + serve_probability_extra
    if np.any(active > n_servers):
        raise ValueError("active partition count exceeds the cluster size")
    per_part = loads / ks
    samples = np.empty(n_trials)
    n_files = loads.size
    for t in range(n_trials):
        x = 0.0
        # Server 0 is touched iff it falls in the file's random active set,
        # which happens with probability active_i / N.
        hits = rng.random(n_files) < active / n_servers
        x = float(np.sum(per_part[hits]))
        samples[t] = x
    return float(samples.var())
