"""Online partition adjustment (Sec. 8, "Short-Term Popularity Variation").

The paper's periodic (12-hourly) repartition cannot follow bursts.  Its
proposed extension: adjust partition granularity *online* by splitting and
combining existing partitions in a distributed manner, without collecting
the file anywhere — a split cuts one cached partition in two on its own
server (then offloads one half), and a merge pulls a sibling partition to a
server that already holds its neighbour.  Either way at most half of the
touched partitions' bytes cross the network, against the full file for a
master-side repartition.

:class:`OnlineAdjuster` implements the control loop: it watches a sliding
window of per-file access counts, recomputes each file's load quantum, and
emits :class:`AdjustOp` split/merge steps whenever a file's per-partition
load drifts a factor of ``tolerance`` away from the target ``1/alpha``.
Split/merge operations move along the doubling ladder, which keeps the
plan incremental (one step per round per file) and the data movement
bounded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.common import ClusterSpec, FilePopulation
from repro.obs import events as ev
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer

__all__ = ["AdjustOp", "OnlineAdjuster"]


@dataclass(frozen=True)
class AdjustOp:
    """One online adjustment step for one file."""

    file_id: int
    action: Literal["split", "merge"]
    old_k: int
    new_k: int
    moved_bytes: float

    def __post_init__(self) -> None:
        if self.action == "split" and self.new_k <= self.old_k:
            raise ValueError("split must increase k")
        if self.action == "merge" and self.new_k >= self.old_k:
            raise ValueError("merge must decrease k")


class OnlineAdjuster:
    """Sliding-window load watcher emitting incremental split/merge plans.

    Parameters
    ----------
    population:
        The cached files (sizes are what matters; popularities are
        re-estimated from the observed window).
    cluster:
        Bounds ``k_i`` and provides bandwidth for the movement estimate.
    alpha:
        The current scale factor; the per-partition load target is
        ``1/alpha``.
    window:
        Number of most recent requests the popularity estimate uses.
    tolerance:
        A file is adjusted when its per-partition load exceeds
        ``tolerance / alpha`` (split) or drops below
        ``1 / (tolerance * alpha)`` while ``k > 1`` (merge).
    estimator:
        Optional sketched popularity source — any object with an
        ``estimated_popularities(n_files)`` method (e.g. a
        :class:`repro.obs.popularity.PopularityMonitor`).  When set it
        replaces the exact sliding-window counts, so the control loop
        runs on bounded-memory estimates instead of oracle bookkeeping;
        :meth:`observe` still fills the window as a fallback.
    """

    def __init__(
        self,
        population: FilePopulation,
        cluster: ClusterSpec,
        alpha: float,
        initial_ks: np.ndarray,
        window: int = 2000,
        tolerance: float = 2.0,
        estimator: object | None = None,
    ) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if tolerance <= 1:
            raise ValueError("tolerance must exceed 1")
        if window < 1:
            raise ValueError("window must be positive")
        self.population = population
        self.cluster = cluster
        self.alpha = float(alpha)
        self.ks = np.asarray(initial_ks, dtype=np.int64).copy()
        if self.ks.shape != (population.n_files,):
            raise ValueError("initial_ks must cover every file")
        self.window = window
        self.tolerance = tolerance
        self._recent: deque[int] = deque(maxlen=window)
        if estimator is not None and not callable(
            getattr(estimator, "estimated_popularities", None)
        ):
            raise TypeError(
                "estimator must expose estimated_popularities(n_files)"
            )
        self.estimator = estimator
        self._feed_estimator = callable(getattr(estimator, "observe", None))
        self.total_moved_bytes = 0.0
        self.ops_applied = 0

    def observe(self, file_id: int) -> None:
        """Record one read (the SP-Master already sees every request)."""
        self._recent.append(int(file_id))
        if self._feed_estimator:
            self.estimator.observe(file_id)

    def observe_many(self, file_ids: np.ndarray) -> None:
        for fid in np.asarray(file_ids).ravel():
            self._recent.append(int(fid))

    def estimated_popularities(self) -> np.ndarray:
        """Popularity estimate driving the next round.

        The attached sketched ``estimator`` when present, else the exact
        sliding-window counts (uniform until data arrives).
        """
        n = self.population.n_files
        if self.estimator is not None:
            est = np.asarray(
                self.estimator.estimated_popularities(n), dtype=np.float64
            )
            if est.shape != (n,):
                raise ValueError(
                    f"estimator returned shape {est.shape}, expected ({n},)"
                )
            total = est.sum()
            return est / total if total > 0 else np.full(n, 1.0 / n)
        if not self._recent:
            return np.full(n, 1.0 / n)
        counts = np.bincount(np.fromiter(self._recent, dtype=np.int64), minlength=n)
        return counts / counts.sum()

    def plan(self) -> list[AdjustOp]:
        """One adjustment round: at most one doubling/halving per file."""
        pops = self.estimated_popularities()
        loads = self.population.sizes * pops
        per_part = loads / self.ks
        target = 1.0 / self.alpha
        ops: list[AdjustOp] = []
        for i in np.nonzero(per_part > self.tolerance * target)[0]:
            new_k = min(int(self.ks[i]) * 2, self.cluster.n_servers)
            if new_k == self.ks[i]:
                continue
            # A distributed split ships half of each split partition.
            moved = float(self.population.sizes[i]) / 2.0
            ops.append(
                AdjustOp(int(i), "split", int(self.ks[i]), new_k, moved)
            )
        cold = (per_part < target / self.tolerance) & (self.ks > 1)
        for i in np.nonzero(cold)[0]:
            new_k = max(int(self.ks[i]) // 2, 1)
            # A merge pulls one sibling per surviving partition.
            moved = float(self.population.sizes[i]) / 2.0
            ops.append(
                AdjustOp(int(i), "merge", int(self.ks[i]), new_k, moved)
            )
        n_split = sum(1 for op in ops if op.action == "split")
        get_registry().counter("core.adjust.ops_planned").inc(len(ops))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                ev.ADJUST_PLAN,
                n_ops=len(ops),
                n_split=n_split,
                n_merge=len(ops) - n_split,
                window_fill=len(self._recent),
            )
        return ops

    def apply(self, ops: list[AdjustOp]) -> None:
        """Commit a plan (the data plane's work is accounted, not moved)."""
        moved = 0.0
        for op in ops:
            if self.ks[op.file_id] != op.old_k:
                raise ValueError(
                    f"stale op for file {op.file_id}: expected k={op.old_k}, "
                    f"have {self.ks[op.file_id]}"
                )
            self.ks[op.file_id] = op.new_k
            self.total_moved_bytes += op.moved_bytes
            moved += op.moved_bytes
            self.ops_applied += 1
        reg = get_registry()
        reg.counter("core.adjust.ops_applied").inc(len(ops))
        reg.counter("core.adjust.moved_bytes").inc(moved)
        tracer = get_tracer()
        if ops and tracer.enabled:
            tracer.event(ev.ADJUST_APPLY, n_ops=len(ops), moved_bytes=moved)

    def step(self) -> list[AdjustOp]:
        """Plan and apply one round; returns what was done."""
        ops = self.plan()
        self.apply(ops)
        return ops

    def adjustment_time(self, ops: list[AdjustOp]) -> float:
        """Wall time of a round: splits/merges run on distinct servers in
        parallel, so the cost is the largest single transfer."""
        if not ops:
            return 0.0
        bw = float(self.cluster.bandwidths.min())
        return max(op.moved_bytes for op in ops) / bw
