"""Fork-join M/G/1 mean-latency upper bound (Sec. 5.3, Eqs. 4-13).

Model recap: file ``i`` (size ``S_i``, rate ``lambda_i``) is split into
``k_i`` partitions on distinct servers.  A read forks to every one of those
servers; each server is an M/G/1 FIFO queue whose service times are
exponential with mean ``S_i / (k_i * B_s)`` for a partition of file ``i``.
Per server ``s`` (``C_s`` = files with a partition there):

* aggregate arrival rate      ``Lambda_s = sum_{i in C_s} lambda_i``        (5)
* mean service time           ``mu_s     = sum (lambda_i/Lambda_s) x_is``   (6)
* 2nd/3rd service moments     ``Gamma2_s, Gamma3_s``                        (12, 13)
* utilisation                 ``rho_s    = Lambda_s * mu_s``
* sojourn mean / variance via Pollaczek-Khinchine                           (10, 11)

and the per-file mean read latency is bounded through Eq. (9), weighted by
popularity into the system bound (8).

Implementation notes: all per-server aggregates are ``np.bincount``
reductions over a flattened (file, server) incidence; the Eq. (9) solve is
batched across files grouped by fan-out width, so evaluating 10k files
costs a handful of vectorized bisections rather than 10k CVXPY programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.cluster.network import GoodputModel
from repro.common import ClusterSpec, FilePopulation
from repro.core.convex import fork_join_upper_bound_batch

__all__ = ["ForkJoinModel", "ModelEvaluation"]


@dataclass(frozen=True)
class ModelEvaluation:
    """Outcome of one bound evaluation."""

    mean_bound: float  # Eq. (8) with per-file bounds from Eq. (9)
    file_bounds: np.ndarray  # T_hat_i per file
    utilisation: np.ndarray  # rho_s per server
    stable: bool  # all rho_s < 1

    @property
    def max_utilisation(self) -> float:
        return float(self.utilisation.max())


@dataclass(frozen=True)
class ForkJoinModel:
    """Bound evaluator bound to a population and a cluster."""

    population: FilePopulation
    cluster: ClusterSpec

    #: Optional goodput model: when set, a file read with fan-out ``k_i``
    #: transfers each partition at ``B_s * g(k_i)`` instead of ``B_s``.  The
    #: paper's analysis omits this term (Sec. 5.3 assumes a non-blocking
    #: network); ``None`` reproduces the pure Eq. (9) bound used in Fig. 8.
    goodput: GoodputModel | None = None

    #: Optional straggler moments ``(E[M], E[M^2], E[M^3])`` of an
    #: independent multiplicative *completion-report* slowdown (e.g.
    #: ``BingStragglerProfile.moments()``).  Matching the injection's
    #: "sleep the server thread" semantics, the slowdown delays the tagged
    #: read's reported completion but consumes no server capacity — so it
    #: scales the tagged transfer's moments, not the queue's.  The paper's
    #: analysis "does not model the stragglers"; folding them in penalizes
    #: wide fork-joins (the join's spread grows with fan-out when slowdowns
    #: are heavy-tailed), which is what turns the bound U-shaped in alpha.
    #: ``None`` = no stragglers (pure paper model).
    straggler_moments: tuple[float, float, float] | None = None

    #: Whether the tagged read's own transfer is additionally capped by the
    #: reading client's aggregate NIC: its effective bandwidth becomes
    #: ``min(B_s, B_client / k_i)`` (all ``k_i`` streams share the client
    #: NIC), while server utilization and queueing-wait moments keep using
    #: the server-side service time — the server is only busy for the bytes
    #: it ships.  The paper's analysis assumes a non-blocking network (no
    #: client cap); the cap is what makes the bound turn upward once ``k_i``
    #: exceeds ``B_client / B_s``: a lone read then takes ``S_i / B_client``
    #: no matter how finely it is split, so finer partitions buy only load
    #: balance while widening the fork-join.  ``False`` reproduces the pure
    #: Eq. (9) bound.
    client_cap: bool = False

    #: Base transfer-time law.  ``"exponential"`` is the paper's assumption
    #: (Sec. 5.3: "we model the transfer delay as exponentially
    #: distributed"); ``"deterministic"`` matches the processor-sharing
    #: simulator's deterministic byte streams (variability then comes only
    #: from queueing and stragglers), which is the right companion when the
    #: model configures a deployment evaluated on that engine.
    service_distribution: Literal["exponential", "deterministic"] = "exponential"

    def evaluate(
        self, ks: np.ndarray, servers_of: list[np.ndarray]
    ) -> ModelEvaluation:
        """Evaluate the bound for partition counts ``ks`` placed per
        ``servers_of`` (``servers_of[i]`` = distinct servers of file ``i``).
        """
        pop = self.population
        ks = np.asarray(ks, dtype=np.int64)
        if ks.shape != pop.sizes.shape:
            raise ValueError("ks must align with the population")
        if len(servers_of) != pop.n_files:
            raise ValueError("servers_of must have one entry per file")

        lam = pop.rates
        x_part = pop.sizes / ks  # partition bytes per file

        # Flatten the (file, server) incidence once.
        counts = np.array([s.size for s in servers_of])
        if np.any(counts != ks):
            raise ValueError("servers_of entry lengths must equal ks")
        file_idx = np.repeat(np.arange(pop.n_files), counts)
        server_idx = (
            np.concatenate(servers_of) if file_idx.size else np.empty(0, np.int64)
        )
        if server_idx.size and (
            server_idx.min() < 0 or server_idx.max() >= self.cluster.n_servers
        ):
            raise ValueError("server id out of range")

        n_servers = self.cluster.n_servers
        bw = self.cluster.bandwidths

        # Per-(file,server) mean service time x_is = S_i / (k_i * B_s),
        # optionally degraded by the fan-out's goodput factor.  This is the
        # server-side busy time, feeding utilization and wait moments.
        x_is = x_part[file_idx] / bw[server_idx]
        if self.goodput is not None:
            g = self.goodput.factor(ks.astype(np.float64), float(bw.mean()))
            x_is = x_is / np.asarray(g)[file_idx]
        # The tagged read's own transfer may be slower: its k_i streams
        # share the client NIC, so per-stream bandwidth is at most B_c/k_i.
        if self.client_cap:
            stretch = np.maximum(
                bw[server_idx]
                * ks[file_idx]
                / self.cluster.effective_client_bandwidth,
                1.0,
            )
            y_is = x_is * stretch
        else:
            y_is = x_is
        lam_is = lam[file_idx]

        # Eq. (5): Lambda_s; Eqs. (6), (12), (13): service moments.  The
        # base law contributes E[X^j] = c_j * x^j (c = 1, 2, 6 for the
        # paper's exponential transfers; c = 1, 1, 1 for deterministic).
        # Stragglers do NOT appear here: a sleeping thread holds no NIC
        # capacity, so the queue's service moments are straggler-free.
        c2, c3 = (
            (2.0, 6.0)
            if self.service_distribution == "exponential"
            else (1.0, 1.0)
        )
        m1, m2, m3 = self.straggler_moments or (1.0, 1.0, 1.0)
        s1 = x_is
        s2 = c2 * x_is**2
        s3 = c3 * x_is**3
        Lambda = np.bincount(server_idx, weights=lam_is, minlength=n_servers)
        sum_lx1 = np.bincount(server_idx, weights=lam_is * s1, minlength=n_servers)
        sum_lx2 = np.bincount(server_idx, weights=lam_is * s2, minlength=n_servers)
        sum_lx3 = np.bincount(server_idx, weights=lam_is * s3, minlength=n_servers)
        with np.errstate(divide="ignore", invalid="ignore"):
            mu = np.where(Lambda > 0, sum_lx1 / Lambda, 0.0)
            gamma2 = np.where(Lambda > 0, sum_lx2 / Lambda, 0.0)
            gamma3 = np.where(Lambda > 0, sum_lx3 / Lambda, 0.0)
        rho = Lambda * mu
        stable = bool(np.all(rho < 1.0))

        # Eqs. (10)-(11): P-K waiting terms, shared by every file on a server.
        with np.errstate(divide="ignore", invalid="ignore"):
            slack = 1.0 - rho
            wait_mean = np.where(slack > 0, Lambda * gamma2 / (2 * slack), np.inf)
            wait_var = np.where(
                slack > 0,
                Lambda * gamma3 / (3 * slack)
                + (Lambda * gamma2) ** 2 / (4 * slack**2),
                np.inf,
            )

        # Sojourn = own reported transfer + queueing wait (independent in
        # M/G/1 FIFO).  The tagged transfer uses the (possibly client-
        # capped) y moments, scaled by the straggler report multiplier:
        # Var = E[(YM)^2] - E[YM]^2 = y^2 * (c2 m2 - m1^2), which is y^2
        # when exponential and straggler-free, recovering Eq. 11's first
        # term.
        t1 = y_is * m1
        t_var = y_is**2 * np.maximum(c2 * m2 - m1**2, 0.0)
        q_mean = t1 + wait_mean[server_idx]
        q_var = t_var + wait_var[server_idx]

        # Batch the Eq. (9) solves by fan-out width.
        file_bounds = np.empty(pop.n_files)
        order = np.argsort(file_idx, kind="stable")
        q_mean = q_mean[order]
        q_var = q_var[order]
        offsets = np.concatenate([[0], np.cumsum(counts)])
        for width in np.unique(counts):
            which = np.nonzero(counts == width)[0]
            rows_mean = np.empty((which.size, width))
            rows_var = np.empty((which.size, width))
            for row, i in enumerate(which):
                lo, hi = offsets[i], offsets[i + 1]
                rows_mean[row] = q_mean[lo:hi]
                rows_var[row] = q_var[lo:hi]
            file_bounds[which] = fork_join_upper_bound_batch(rows_mean, rows_var)

        mean_bound = float(np.dot(pop.popularities, file_bounds))
        return ModelEvaluation(
            mean_bound=mean_bound,
            file_bounds=file_bounds,
            utilisation=rho,
            stable=stable,
        )
