"""Algorithm 2: parallel repartition planning and its timing model.

When popularities shift, SP-Cache recomputes the scale factor, leaves files
whose partition count is unchanged where they are (recording their load so
the balance accounting stays truthful), and re-places only the changed
files onto the least-loaded servers.  Each changed file is handled by an
SP-Repartitioner running on a server that already holds one of its
partitions, so reassembly pulls ``k_old - 1`` partitions over the network
instead of ``k_old``.

Two timing models back Figs. 16-17:

* **sequential** (the pre-journal-version baseline): the master collects and
  re-splits *every* file one after another through its single NIC;
* **parallel**: each repartitioner ships its own assignment concurrently;
  completion time is the slowest repartitioner's work, computed per server.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import ClusterSpec, FilePopulation, make_rng
from repro.core.placement import placement_server_loads
from repro.core.scale_factor import optimal_scale_factor
from repro.core.partitioner import partition_counts
from repro.obs import events as ev
from repro.obs.metrics import get_registry
from repro.obs.spans import span
from repro.obs.tracing import get_tracer

__all__ = [
    "EpochRepartitionPlan",
    "RepartitionPlan",
    "plan_epoch_repartition",
    "plan_repartition",
    "repartition_time_parallel",
    "repartition_time_sequential",
]


@dataclass(frozen=True)
class RepartitionPlan:
    """Outcome of Algorithm 2's planning phase."""

    new_ks: np.ndarray
    changed: np.ndarray  # bool per file: k_i != k'_i
    new_servers_of: list[np.ndarray]  # placement for every file (changed or kept)
    repartitioner_of: np.ndarray  # server running the repartition; -1 if kept
    alpha: float

    @property
    def n_changed(self) -> int:
        return int(self.changed.sum())

    @property
    def changed_fraction(self) -> float:
        """Fig. 17's metric: fraction of files that must move."""
        return self.n_changed / self.changed.size if self.changed.size else 0.0


def plan_repartition(
    population: FilePopulation,
    cluster: ClusterSpec,
    old_ks: np.ndarray,
    old_servers_of: list[np.ndarray],
    alpha: float | None = None,
    seed: int | np.random.Generator | None = 0,
) -> RepartitionPlan:
    """Algorithm 2 lines 3-15 against the *new* popularity in ``population``.

    ``old_ks``/``old_servers_of`` describe the current layout.  If ``alpha``
    is None, Algorithm 1 is run first (line 3).  Unchanged files keep their
    servers and seed the greedy load accounting (lines 6-9); changed files
    are placed one partition at a time on the currently least-loaded server
    that does not already hold one (lines 10-15).
    """
    rng = make_rng(seed)
    old_ks = np.asarray(old_ks, dtype=np.int64)
    n = population.n_files
    if old_ks.shape != (n,) or len(old_servers_of) != n:
        raise ValueError("old layout must cover every file")

    with span("repartition_plan", n_files=n):
        plan = _plan_repartition(
            population, cluster, old_ks, old_servers_of, alpha, rng
        )
    reg = get_registry()
    reg.counter("core.repartition.plans").inc()
    reg.counter("core.repartition.files_changed").inc(plan.n_changed)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            ev.REPARTITION_PLAN,
            n_files=n,
            n_changed=plan.n_changed,
            changed_fraction=plan.changed_fraction,
            alpha=plan.alpha,
        )
    return plan


def _plan_repartition(
    population: FilePopulation,
    cluster: ClusterSpec,
    old_ks: np.ndarray,
    old_servers_of: list[np.ndarray],
    alpha: float | None,
    rng: np.random.Generator,
) -> RepartitionPlan:
    n = population.n_files
    if alpha is None:
        alpha = optimal_scale_factor(population, cluster, seed=rng).alpha
    new_ks = partition_counts(population, alpha, n_servers=cluster.n_servers)
    changed = new_ks != old_ks
    loads = population.loads

    # Lines 5-9: seed server loads with the files staying put.
    kept_servers = [
        old_servers_of[i] if not changed[i] else np.empty(0, dtype=np.int64)
        for i in range(n)
    ]
    server_loads = placement_server_loads(kept_servers, loads, cluster.n_servers)

    # Lines 10-15: greedy placement of changed files, hottest first so the
    # big load quanta land while the field is still level.
    new_servers_of: list[np.ndarray] = list(kept_servers)
    repartitioner_of = np.full(n, -1, dtype=np.int64)
    for i in np.argsort(-loads * changed, kind="stable"):
        if not changed[i]:
            continue
        k = int(new_ks[i])
        per_part = loads[i] / k
        chosen = np.empty(k, dtype=np.int64)
        taken = np.zeros(cluster.n_servers, dtype=bool)
        for slot in range(k):
            masked = np.where(taken, np.inf, server_loads)
            s = int(np.argmin(masked))
            chosen[slot] = s
            taken[s] = True
            server_loads[s] += per_part
        new_servers_of[i] = np.sort(chosen)
        # The repartitioner runs where a current partition already lives.
        old = old_servers_of[i]
        repartitioner_of[i] = int(old[rng.integers(old.size)]) if old.size else 0

    return RepartitionPlan(
        new_ks=new_ks,
        changed=changed,
        new_servers_of=new_servers_of,
        repartitioner_of=repartitioner_of,
        alpha=float(alpha),
    )


def _moved_bytes(
    size: float, old_k: int, new_k: int, repartitioner_local: bool
) -> float:
    """Bytes a repartitioner transfers for one file.

    Collect ``old_k - 1`` remote partitions (one is local when the
    repartitioner holds a partition), then push the new partitions, of which
    at most one can stay local.
    """
    pull = size * (old_k - (1 if repartitioner_local else 0)) / old_k
    push = size * max(new_k - 1, 0) / new_k
    return pull + push


@dataclass(frozen=True)
class EpochRepartitionPlan:
    """Algorithm 2 extended to a membership change (one topology epoch).

    All server ids here are *stable* ids
    (:class:`repro.cluster.topology.ClusterTopology`); arrays indexed by
    server use the topology's full id space so accounting lines up
    across epochs.  ``changed`` marks every file that moves, in one of
    two modes:

    * **patched** — a hosting server left but the partition count is
      unchanged: surviving partitions stay put and each replacement
      server pulls only its lost ``S_i / k_i`` slice (from the draining
      host during the decommission grace window);
    * **repartitioned** — the recomputed ``k'_i`` differs, so the file
      goes through the full Algorithm 2 collect-and-resplit.

    The bytes/disruption fields price moves the way Fig. 16's parallel
    scheme does: every transfer owner (repartitioner or partition
    puller) ships its own assignment concurrently, so the disruption
    window is the slowest server's transfer time.
    """

    epoch: int
    new_ks: np.ndarray
    changed: np.ndarray  # bool per file: the file must move
    epoch_forced: np.ndarray  # bool per file: a hosting server left
    patched: np.ndarray  # bool per file: forced but k unchanged
    new_servers_of: list[np.ndarray]  # stable-id placement for every file
    repartitioner_of: np.ndarray  # stable server id running the move; -1 kept/patched
    alpha: float
    moved_bytes: float
    per_server_bytes: np.ndarray  # id-space array of transfer-owner bytes
    disruption_window_s: float

    @property
    def n_changed(self) -> int:
        return int(self.changed.sum())

    @property
    def changed_fraction(self) -> float:
        return self.n_changed / self.changed.size if self.changed.size else 0.0

    @property
    def n_epoch_forced(self) -> int:
        """Files that moved *because of membership*, not popularity."""
        return int(self.epoch_forced.sum())

    @property
    def n_patched(self) -> int:
        """Forced files healed in place (lost partitions re-pulled only)."""
        return int(self.patched.sum())


def plan_epoch_repartition(
    population: FilePopulation,
    epoch,
    old_ks: np.ndarray,
    old_servers_of: list[np.ndarray],
    *,
    alpha: float | None = None,
    max_partitions: int | None = None,
    id_space: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> EpochRepartitionPlan:
    """Re-plan a layout onto a new membership epoch (Algorithm 2 + churn).

    ``epoch`` is an :class:`repro.cluster.topology.EpochView`;
    ``old_ks``/``old_servers_of`` describe the current layout in stable
    ids (as produced by a previous call, or by a policy run against the
    previous epoch's spec).  Three cases per file:

    * every hosting server survives and the new partition count matches
      — the file stays put and seeds the greedy load accounting;
    * a hosting server left but ``k'_i`` is unchanged (``patched``) —
      surviving partitions stay put; each lost slot is re-assigned to a
      least-loaded active server that pulls only its ``S_i / k_i``
      slice from the draining host (decommission grace window);
    * the recomputed ``k'_i`` differs — full Algorithm 2: the file is
      re-placed on the ``k'_i`` least-loaded *active* servers, hottest
      files first.  The repartitioner runs on a surviving old server
      when one exists (pulling ``k_old - 1`` partitions); when the
      whole old footprint departed, a new server pulls all ``k_old``
      partitions from draining peers.

    ``max_partitions`` additionally clamps the recomputed counts below
    the epoch's server count.  Pinning it to the *smallest* epoch the
    schedule visits keeps ``k'_i`` stable while membership oscillates
    above it, so only membership-*forced* files move — without it, every
    file clamped at ``N`` re-scales on every size change.

    Bytes moved and the per-server disruption window are accounted
    against the epoch's per-server bandwidths; a ``repartition_plan``
    trace event (with ``epoch`` fields) and a ``repartition_time`` event
    (``mode="epoch"``) are emitted when tracing is on.
    """
    rng = make_rng(seed)
    old_ks = np.asarray(old_ks, dtype=np.int64)
    n = population.n_files
    if old_ks.shape != (n,) or len(old_servers_of) != n:
        raise ValueError("old layout must cover every file")
    active = np.asarray(epoch.server_ids, dtype=np.int64)
    width = int(id_space) if id_space is not None else int(active.max()) + 1
    if width <= int(active.max()):
        raise ValueError("id_space must cover every active server id")
    active_mask = np.zeros(width, dtype=bool)
    active_mask[active] = True

    with span("epoch_repartition_plan", n_files=n, epoch=epoch.index):
        plan = _plan_epoch_repartition(
            population, epoch, old_ks, old_servers_of, alpha,
            max_partitions, rng, active, active_mask, width,
        )
    reg = get_registry()
    reg.counter("core.repartition.plans", mode="epoch").inc()
    reg.counter("core.repartition.files_changed", mode="epoch").inc(
        plan.n_changed
    )
    reg.counter("core.repartition.moved_bytes", mode="epoch").inc(
        plan.moved_bytes
    )
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            ev.REPARTITION_PLAN,
            epoch=epoch.index,
            n_files=n,
            n_changed=plan.n_changed,
            n_epoch_forced=plan.n_epoch_forced,
            n_patched=plan.n_patched,
            changed_fraction=plan.changed_fraction,
            alpha=plan.alpha,
        )
        tracer.event(
            ev.REPARTITION_TIME,
            mode="epoch",
            epoch=epoch.index,
            seconds=plan.disruption_window_s,
            moved_bytes=plan.moved_bytes,
        )
    return plan


def _plan_epoch_repartition(
    population: FilePopulation,
    epoch,
    old_ks: np.ndarray,
    old_servers_of: list[np.ndarray],
    alpha: float | None,
    max_partitions: int | None,
    rng: np.random.Generator,
    active: np.ndarray,
    active_mask: np.ndarray,
    width: int,
) -> EpochRepartitionPlan:
    n = population.n_files
    if alpha is None:
        alpha = optimal_scale_factor(population, epoch.spec, seed=rng).alpha
    cap = active.size
    if max_partitions is not None:
        cap = min(cap, int(max_partitions))
    new_ks = partition_counts(population, alpha, n_servers=cap)
    loads = population.loads
    epoch_forced = np.fromiter(
        (
            bool(old_servers_of[i].size)
            and not np.all(active_mask[old_servers_of[i]])
            for i in range(n)
        ),
        dtype=bool,
        count=n,
    )
    changed = (new_ks != old_ks) | epoch_forced
    patched = epoch_forced & (new_ks == old_ks)

    # Partitions staying put seed the load field (stable-id space;
    # inactive servers are priced out of the greedy argmin with +inf).
    # Patched files keep their surviving partitions, each still worth
    # ``L_i / k_i`` — only the lost slots go back to the allocator.
    kept_servers = [
        old_servers_of[i] if not changed[i] else np.empty(0, dtype=np.int64)
        for i in range(n)
    ]
    server_loads = placement_server_loads(kept_servers, loads, width)
    for i in np.nonzero(patched)[0]:
        survivors = old_servers_of[i][active_mask[old_servers_of[i]]]
        server_loads[survivors] += loads[i] / max(int(old_ks[i]), 1)
    server_loads[~active_mask] = np.inf

    new_servers_of: list[np.ndarray] = list(kept_servers)
    repartitioner_of = np.full(n, -1, dtype=np.int64)
    per_server_bytes = np.zeros(width)
    for i in np.argsort(-loads * changed, kind="stable"):
        if not changed[i]:
            continue
        k = int(new_ks[i])
        per_part = loads[i] / k
        if patched[i]:
            # Heal in place: replacement servers pull only the lost
            # slices from the draining host, survivors never move.
            survivors = old_servers_of[i][active_mask[old_servers_of[i]]]
            n_lost = k - survivors.size
            taken = np.zeros(width, dtype=bool)
            taken[survivors] = True
            chosen = np.empty(n_lost, dtype=np.int64)
            for slot in range(n_lost):
                masked = np.where(taken, np.inf, server_loads)
                s = int(np.argmin(masked))
                chosen[slot] = s
                taken[s] = True
                server_loads[s] += per_part
                per_server_bytes[s] += population.sizes[i] / k
            new_servers_of[i] = np.sort(np.concatenate([survivors, chosen]))
            continue
        chosen = np.empty(k, dtype=np.int64)
        taken = np.zeros(width, dtype=bool)
        for slot in range(k):
            masked = np.where(taken, np.inf, server_loads)
            s = int(np.argmin(masked))
            chosen[slot] = s
            taken[s] = True
            server_loads[s] += per_part
        new_servers_of[i] = np.sort(chosen)
        survivors = old_servers_of[i][active_mask[old_servers_of[i]]]
        old_k = max(int(old_ks[i]), 1)
        if survivors.size:
            rep = int(survivors[rng.integers(survivors.size)])
            bytes_i = _moved_bytes(
                population.sizes[i], old_k, k, repartitioner_local=True
            )
        else:
            # Whole footprint departed: the first new holder collects
            # every old partition before re-splitting.
            rep = int(chosen[0])
            bytes_i = _moved_bytes(
                population.sizes[i], old_k, k, repartitioner_local=False
            )
        repartitioner_of[i] = rep
        per_server_bytes[rep] += bytes_i

    bandwidths = np.full(width, np.inf)
    bandwidths[active] = epoch.spec.bandwidths
    times = per_server_bytes / bandwidths
    return EpochRepartitionPlan(
        epoch=int(epoch.index),
        new_ks=new_ks,
        changed=changed,
        epoch_forced=epoch_forced,
        patched=patched,
        new_servers_of=new_servers_of,
        repartitioner_of=repartitioner_of,
        alpha=float(alpha),
        moved_bytes=float(per_server_bytes.sum()),
        per_server_bytes=per_server_bytes,
        disruption_window_s=float(times.max()) if times.size else 0.0,
    )


def repartition_time_parallel(
    plan: RepartitionPlan,
    population: FilePopulation,
    cluster: ClusterSpec,
    old_ks: np.ndarray,
) -> float:
    """Completion time with one SP-Repartitioner per server (Fig. 16).

    Repartitioners work concurrently; each server's wall time is its total
    assigned bytes over its NIC bandwidth, and the round finishes when the
    slowest server does.
    """
    old_ks = np.asarray(old_ks, dtype=np.int64)
    per_server = np.zeros(cluster.n_servers)
    for i in np.nonzero(plan.changed)[0]:
        s = int(plan.repartitioner_of[i])
        per_server[s] += _moved_bytes(
            population.sizes[i], int(old_ks[i]), int(plan.new_ks[i]), True
        )
    times = per_server / cluster.bandwidths
    seconds = float(times.max()) if times.size else 0.0
    total_bytes = float(per_server.sum())
    get_registry().counter(
        "core.repartition.moved_bytes", mode="parallel"
    ).inc(total_bytes)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            ev.REPARTITION_TIME,
            mode="parallel",
            seconds=seconds,
            moved_bytes=total_bytes,
        )
    return seconds


def repartition_time_sequential(
    plan: RepartitionPlan,
    population: FilePopulation,
    cluster: ClusterSpec,
    old_ks: np.ndarray,
) -> float:
    """Completion time of the naive scheme (Sec. 7.4's baseline).

    The master collects and redistributes **all** files — changed or not —
    in sequence through its own NIC (bandwidth of server 0's class).
    """
    del plan, old_ks  # the naive scheme moves every file regardless of layout
    bw = float(cluster.bandwidths[0])
    # Collect the whole file, then push every new partition back out: each
    # file crosses the master's NIC twice.
    total_bytes = float(2.0 * population.sizes.sum())
    seconds = total_bytes / bw
    get_registry().counter(
        "core.repartition.moved_bytes", mode="sequential"
    ).inc(total_bytes)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            ev.REPARTITION_TIME,
            mode="sequential",
            seconds=seconds,
            moved_bytes=total_bytes,
        )
    return seconds
