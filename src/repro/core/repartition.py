"""Algorithm 2: parallel repartition planning and its timing model.

When popularities shift, SP-Cache recomputes the scale factor, leaves files
whose partition count is unchanged where they are (recording their load so
the balance accounting stays truthful), and re-places only the changed
files onto the least-loaded servers.  Each changed file is handled by an
SP-Repartitioner running on a server that already holds one of its
partitions, so reassembly pulls ``k_old - 1`` partitions over the network
instead of ``k_old``.

Two timing models back Figs. 16-17:

* **sequential** (the pre-journal-version baseline): the master collects and
  re-splits *every* file one after another through its single NIC;
* **parallel**: each repartitioner ships its own assignment concurrently;
  completion time is the slowest repartitioner's work, computed per server.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import ClusterSpec, FilePopulation, make_rng
from repro.core.placement import placement_server_loads
from repro.core.scale_factor import optimal_scale_factor
from repro.core.partitioner import partition_counts
from repro.obs import events as ev
from repro.obs.metrics import get_registry
from repro.obs.spans import span
from repro.obs.tracing import get_tracer

__all__ = [
    "RepartitionPlan",
    "plan_repartition",
    "repartition_time_parallel",
    "repartition_time_sequential",
]


@dataclass(frozen=True)
class RepartitionPlan:
    """Outcome of Algorithm 2's planning phase."""

    new_ks: np.ndarray
    changed: np.ndarray  # bool per file: k_i != k'_i
    new_servers_of: list[np.ndarray]  # placement for every file (changed or kept)
    repartitioner_of: np.ndarray  # server running the repartition; -1 if kept
    alpha: float

    @property
    def n_changed(self) -> int:
        return int(self.changed.sum())

    @property
    def changed_fraction(self) -> float:
        """Fig. 17's metric: fraction of files that must move."""
        return self.n_changed / self.changed.size if self.changed.size else 0.0


def plan_repartition(
    population: FilePopulation,
    cluster: ClusterSpec,
    old_ks: np.ndarray,
    old_servers_of: list[np.ndarray],
    alpha: float | None = None,
    seed: int | np.random.Generator | None = 0,
) -> RepartitionPlan:
    """Algorithm 2 lines 3-15 against the *new* popularity in ``population``.

    ``old_ks``/``old_servers_of`` describe the current layout.  If ``alpha``
    is None, Algorithm 1 is run first (line 3).  Unchanged files keep their
    servers and seed the greedy load accounting (lines 6-9); changed files
    are placed one partition at a time on the currently least-loaded server
    that does not already hold one (lines 10-15).
    """
    rng = make_rng(seed)
    old_ks = np.asarray(old_ks, dtype=np.int64)
    n = population.n_files
    if old_ks.shape != (n,) or len(old_servers_of) != n:
        raise ValueError("old layout must cover every file")

    with span("repartition_plan", n_files=n):
        plan = _plan_repartition(
            population, cluster, old_ks, old_servers_of, alpha, rng
        )
    reg = get_registry()
    reg.counter("core.repartition.plans").inc()
    reg.counter("core.repartition.files_changed").inc(plan.n_changed)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            ev.REPARTITION_PLAN,
            n_files=n,
            n_changed=plan.n_changed,
            changed_fraction=plan.changed_fraction,
            alpha=plan.alpha,
        )
    return plan


def _plan_repartition(
    population: FilePopulation,
    cluster: ClusterSpec,
    old_ks: np.ndarray,
    old_servers_of: list[np.ndarray],
    alpha: float | None,
    rng: np.random.Generator,
) -> RepartitionPlan:
    n = population.n_files
    if alpha is None:
        alpha = optimal_scale_factor(population, cluster, seed=rng).alpha
    new_ks = partition_counts(population, alpha, n_servers=cluster.n_servers)
    changed = new_ks != old_ks
    loads = population.loads

    # Lines 5-9: seed server loads with the files staying put.
    kept_servers = [
        old_servers_of[i] if not changed[i] else np.empty(0, dtype=np.int64)
        for i in range(n)
    ]
    server_loads = placement_server_loads(kept_servers, loads, cluster.n_servers)

    # Lines 10-15: greedy placement of changed files, hottest first so the
    # big load quanta land while the field is still level.
    new_servers_of: list[np.ndarray] = list(kept_servers)
    repartitioner_of = np.full(n, -1, dtype=np.int64)
    for i in np.argsort(-loads * changed, kind="stable"):
        if not changed[i]:
            continue
        k = int(new_ks[i])
        per_part = loads[i] / k
        chosen = np.empty(k, dtype=np.int64)
        taken = np.zeros(cluster.n_servers, dtype=bool)
        for slot in range(k):
            masked = np.where(taken, np.inf, server_loads)
            s = int(np.argmin(masked))
            chosen[slot] = s
            taken[s] = True
            server_loads[s] += per_part
        new_servers_of[i] = np.sort(chosen)
        # The repartitioner runs where a current partition already lives.
        old = old_servers_of[i]
        repartitioner_of[i] = int(old[rng.integers(old.size)]) if old.size else 0

    return RepartitionPlan(
        new_ks=new_ks,
        changed=changed,
        new_servers_of=new_servers_of,
        repartitioner_of=repartitioner_of,
        alpha=float(alpha),
    )


def _moved_bytes(
    size: float, old_k: int, new_k: int, repartitioner_local: bool
) -> float:
    """Bytes a repartitioner transfers for one file.

    Collect ``old_k - 1`` remote partitions (one is local when the
    repartitioner holds a partition), then push the new partitions, of which
    at most one can stay local.
    """
    pull = size * (old_k - (1 if repartitioner_local else 0)) / old_k
    push = size * max(new_k - 1, 0) / new_k
    return pull + push


def repartition_time_parallel(
    plan: RepartitionPlan,
    population: FilePopulation,
    cluster: ClusterSpec,
    old_ks: np.ndarray,
) -> float:
    """Completion time with one SP-Repartitioner per server (Fig. 16).

    Repartitioners work concurrently; each server's wall time is its total
    assigned bytes over its NIC bandwidth, and the round finishes when the
    slowest server does.
    """
    old_ks = np.asarray(old_ks, dtype=np.int64)
    per_server = np.zeros(cluster.n_servers)
    for i in np.nonzero(plan.changed)[0]:
        s = int(plan.repartitioner_of[i])
        per_server[s] += _moved_bytes(
            population.sizes[i], int(old_ks[i]), int(plan.new_ks[i]), True
        )
    times = per_server / cluster.bandwidths
    seconds = float(times.max()) if times.size else 0.0
    total_bytes = float(per_server.sum())
    get_registry().counter(
        "core.repartition.moved_bytes", mode="parallel"
    ).inc(total_bytes)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            ev.REPARTITION_TIME,
            mode="parallel",
            seconds=seconds,
            moved_bytes=total_bytes,
        )
    return seconds


def repartition_time_sequential(
    plan: RepartitionPlan,
    population: FilePopulation,
    cluster: ClusterSpec,
    old_ks: np.ndarray,
) -> float:
    """Completion time of the naive scheme (Sec. 7.4's baseline).

    The master collects and redistributes **all** files — changed or not —
    in sequence through its own NIC (bandwidth of server 0's class).
    """
    del plan, old_ks  # the naive scheme moves every file regardless of layout
    bw = float(cluster.bandwidths[0])
    # Collect the whole file, then push every new partition back out: each
    # file crosses the master's NIC twice.
    total_bytes = float(2.0 * population.sizes.sum())
    seconds = total_bytes / bw
    get_registry().counter(
        "core.repartition.moved_bytes", mode="sequential"
    ).inc(total_bytes)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            ev.REPARTITION_TIME,
            mode="sequential",
            seconds=seconds,
            moved_bytes=total_bytes,
        )
    return seconds
