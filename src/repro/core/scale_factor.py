"""Algorithm 1: exponential search for the optimal scale factor.

The bound of Sec. 5.3 decreases steeply in ``alpha`` while load imbalance
dominates, then flattens (the "elbow") and eventually rises in reality from
networking overhead the model excludes.  Algorithm 1 therefore starts from
the alpha that gives the hottest file ``N/3`` partitions, inflates by 1.5x
per step, and stops when the bound improves by less than 1 % — settling on
the elbow without ever modelling the overhead side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.network import GoodputModel
from repro.common import ClusterSpec, FilePopulation, make_rng
from repro.core.latency_model import ForkJoinModel
from repro.core.partitioner import partition_counts
from repro.core.placement import extend_placement, place_partitions_random
from repro.obs import events as ev
from repro.obs.metrics import get_registry
from repro.obs.spans import span
from repro.obs.tracing import get_tracer

__all__ = ["ScaleFactorSearch", "optimal_scale_factor"]


@dataclass(frozen=True)
class ScaleFactorSearch:
    """Result of Algorithm 1.

    ``trajectory`` holds one ``(alpha, bound)`` pair per iteration so the
    Fig. 8 experiment can plot the search path; ``alpha``/``bound`` are the
    best iterate seen (the last one under ``"paper"`` mode with the
    monotone pure bound, the ladder argmin under ``"sweep"``).
    """

    alpha: float
    bound: float
    trajectory: list[tuple[float, float]] = field(default_factory=list)

    @property
    def n_iterations(self) -> int:
        return len(self.trajectory)


def optimal_scale_factor(
    population: FilePopulation,
    cluster: ClusterSpec,
    growth: float = 1.5,
    improvement_threshold: float = 0.01,
    initial_partitions_fraction: float = 1.0 / 3.0,
    max_iterations: int = 60,
    goodput: GoodputModel | None = None,
    straggler_moments: tuple[float, float, float] | None = None,
    client_cap: bool = False,
    service_distribution: str = "exponential",
    mode: str = "paper",
    seed: int | np.random.Generator | None = 0,
) -> ScaleFactorSearch:
    """Run Algorithm 1 and return the settled scale factor.

    Placement discipline (line 3): one random placement is drawn for the
    initial partition counts and *extended in place* as counts grow — files
    keep their existing partition servers and only gain new ones.  Redrawing
    the whole placement each iteration would inject a few percent of
    placement noise into consecutive bounds, defeating the 1 % stop rule.
    The loop is additionally capped at ``max_iterations`` and stops early if
    every file has hit the ``N``-partition clamp.

    ``mode`` selects the stopping discipline:

    * ``"paper"`` — Algorithm 1 verbatim: stop at the first step whose
      bound changes by less than ``improvement_threshold`` relative to the
      previous step.  A *local* rule: correct for the paper's monotone
      pure bound, but it can park on a local plateau when the bound is
      evaluated with the overhead-aware model variants (straggler moments,
      client cap), whose curves can be multi-modal in ``alpha``.
    * ``"sweep"`` — walk the same 1.5x ladder all the way to saturation
      (every file at the ``N``-partition clamp) and return the alpha with
      the smallest bound.  ~20 bound evaluations instead of ~5; immune to
      local plateaus.  This is what :class:`SPCachePolicy` uses by
      default.

    Either way the returned ``alpha`` is the best iterate seen (a no-op
    under ``"paper"`` mode with the monotone pure bound).
    """
    if growth <= 1:
        raise ValueError("growth must exceed 1")
    if improvement_threshold <= 0:
        raise ValueError("improvement_threshold must be positive")
    if mode not in ("paper", "sweep"):
        raise ValueError(f"unknown mode {mode!r}")
    rng = make_rng(seed)
    model = ForkJoinModel(
        population,
        cluster,
        goodput=goodput,
        straggler_moments=straggler_moments,
        client_cap=client_cap,
        service_distribution=service_distribution,  # type: ignore[arg-type]
    )

    # Line 2: alpha^1 gives the hottest file N/3 partitions.
    l_max = float(population.loads.max())
    alpha = cluster.n_servers * initial_partitions_fraction / l_max

    tracer = get_tracer()
    wall_start = time.perf_counter()
    trajectory: list[tuple[float, float]] = []
    prev_bound = np.inf
    prev_ks: np.ndarray | None = None
    servers_of: list[np.ndarray] | None = None
    with span("scale_search", mode=mode):
        for _ in range(max_iterations):
            ks = partition_counts(
                population, alpha, n_servers=cluster.n_servers
            )
            if servers_of is None:
                servers_of = place_partitions_random(
                    ks, cluster.n_servers, seed=rng
                )
            else:
                servers_of = extend_placement(
                    servers_of, ks, cluster.n_servers, seed=rng
                )
            bound = model.evaluate(ks, servers_of).mean_bound
            trajectory.append((alpha, bound))
            if tracer.enabled:
                tracer.event(
                    ev.SCALE_ITER,
                    iteration=len(trajectory),
                    alpha=float(alpha),
                    bound=float(bound),
                    max_k=int(ks.max()),
                )

            if (
                mode == "paper"
                and np.isfinite(bound)
                and np.isfinite(prev_bound)
            ):
                if abs(bound - prev_bound) <= improvement_threshold * prev_bound:
                    break
            if np.all(ks == cluster.n_servers):
                # Every file is at the N-partition clamp; inflating further
                # cannot change anything.
                break
            if (
                mode == "paper"
                and prev_ks is not None
                and np.array_equal(ks, prev_ks)
            ):
                break
            prev_bound = bound
            prev_ks = ks
            alpha *= growth

    # Settle on the best iterate.  With the paper's monotone bound the last
    # iterate is the minimum and this is a no-op; with the overhead-aware
    # variants the curve is U-shaped and the flat stop can land one step
    # past the bottom.
    finite = [(a, b) for a, b in trajectory if np.isfinite(b)]
    if finite:
        best_alpha, best_bound = min(finite, key=lambda ab: ab[1])
    else:
        best_alpha, best_bound = trajectory[0]

    elapsed = time.perf_counter() - wall_start
    reg = get_registry()
    reg.counter("core.scale_search.runs", mode=mode).inc()
    reg.counter("core.scale_search.iterations", mode=mode).inc(len(trajectory))
    reg.histogram("core.scale_search.seconds", mode=mode).observe(elapsed)
    if tracer.enabled:
        tracer.event(
            ev.SCALE_SEARCH,
            mode=mode,
            iterations=len(trajectory),
            alpha=float(best_alpha),
            bound=float(best_bound),
            wall_s=elapsed,
        )
    return ScaleFactorSearch(
        alpha=best_alpha, bound=best_bound, trajectory=trajectory
    )
