"""Selective partition sizing — Eq. (1).

``k_i = ceil(alpha * L_i)`` with ``L_i = S_i * P_i``, so every partition
carries roughly ``1/alpha`` of load and random placement then balances
servers by construction (Sec. 5.1).  Two practical clamps the implementation
needs that the formula glosses over:

* at least one partition per file (cold files are left unsplit);
* at most ``N`` partitions, because no two partitions of a file may share a
  server.
"""

from __future__ import annotations

import numpy as np

from repro.common import FilePopulation, validate_server_count

__all__ = ["partition_counts", "partition_sizes", "max_load"]


def partition_counts(
    loads: np.ndarray | FilePopulation,
    alpha: float,
    n_servers: int | None = None,
) -> np.ndarray:
    """Eq. (1): per-file partition counts for scale factor ``alpha``.

    Parameters
    ----------
    loads:
        Either the expected-load vector ``L_i = S_i * P_i`` (bytes) or a
        :class:`~repro.common.FilePopulation` (its ``loads`` are used).
    alpha:
        System-wide scale factor (partitions per byte of expected load).
    n_servers:
        If given, counts are clamped to ``n_servers`` so the distinct-server
        placement constraint stays satisfiable.
    """
    if isinstance(loads, FilePopulation):
        loads = loads.loads
    loads = np.asarray(loads, dtype=np.float64)
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    ks = np.ceil(alpha * loads).astype(np.int64)
    ks = np.maximum(ks, 1)
    if n_servers is not None:
        ks = np.minimum(ks, validate_server_count(n_servers))
    return ks


def partition_sizes(
    population: FilePopulation, ks: np.ndarray
) -> np.ndarray:
    """Per-file partition size ``S_i / k_i`` in bytes (Fig. 11's y-axis)."""
    ks = np.asarray(ks)
    if ks.shape != population.sizes.shape:
        raise ValueError("ks must align with the population")
    if np.any(ks < 1):
        raise ValueError("partition counts must be >= 1")
    return population.sizes / ks


def max_load(population: FilePopulation) -> float:
    """``L_max = max_i S_i * P_i`` — the hottest file's load (Theorem 1)."""
    return float(population.loads.max())
