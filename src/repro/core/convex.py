"""Exact solver for the Eq. (9) inner minimisation.

The fork-join bound of Xiang et al. [45] upper-bounds the mean of a maximum
of queue sojourn times:

    T_hat = min_z  z + sum_s 1/2 (E_s - z)
                     + sum_s 1/2 sqrt((E_s - z)^2 + V_s)

with ``E_s = E[Q_s]`` and ``V_s = Var[Q_s]``.  The objective is convex in
``z`` (each sqrt term is a hyperbola branch), so the paper hands it to
CVXPY; we instead solve the monotone first-order condition

    f'(z) = 1 - m/2 + 1/2 sum_s (z - E_s) / sqrt((z - E_s)^2 + V_s) = 0

by bisection, which is exact, dependency-free, and vectorizes across many
files at once (the scale-factor search evaluates the bound for every file
at every candidate alpha).

Special case ``m = 1``: ``f'(z) -> 0^+`` as ``z -> -inf`` and the infimum is
the limit value ``E_1`` — the bound degenerates to the single queue's mean
sojourn time, as it should.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fork_join_upper_bound", "fork_join_upper_bound_batch"]

_TOL = 1e-12
_MAX_ITER = 200


def _objective(z: np.ndarray, means: np.ndarray, variances: np.ndarray) -> np.ndarray:
    """Eq. (9) objective; ``z`` has shape (batch, 1), stats (batch, m)."""
    diff = means - z
    return (
        z[..., 0]
        + 0.5 * diff.sum(axis=-1)
        + 0.5 * np.sqrt(diff**2 + variances).sum(axis=-1)
    )


def _derivative(z: np.ndarray, means: np.ndarray, variances: np.ndarray) -> np.ndarray:
    diff = z - means
    m = means.shape[-1]
    # diff == 0 with zero variance is the kink of |z - E|; its
    # subgradient midpoint 0 keeps the bisection consistent.
    with np.errstate(invalid="ignore"):
        terms = np.where(
            (diff == 0) & (variances == 0),
            0.0,
            diff / np.sqrt(diff**2 + variances),
        )
    return 1.0 - 0.5 * m + 0.5 * terms.sum(axis=-1)


def fork_join_upper_bound_batch(
    means: np.ndarray, variances: np.ndarray
) -> np.ndarray:
    """Eq. (9) bound for a batch of files sharing a fan-out width.

    Parameters
    ----------
    means, variances:
        Arrays of shape ``(batch, m)``: per-server sojourn mean/variance for
        each file's ``m`` partition reads.  Non-finite entries (unstable
        queues) make that file's bound ``inf``.

    Returns
    -------
    Array of shape ``(batch,)`` with the minimized bound per file.
    """
    means = np.atleast_2d(np.asarray(means, dtype=np.float64))
    variances = np.atleast_2d(np.asarray(variances, dtype=np.float64))
    if means.shape != variances.shape:
        raise ValueError("means and variances must have the same shape")
    if np.any(variances < 0):
        raise ValueError("variances must be non-negative")
    batch, m = means.shape
    out = np.full(batch, np.inf)
    finite = np.isfinite(means).all(axis=1) & np.isfinite(variances).all(axis=1)
    if not finite.any():
        return out
    mu = means[finite]
    var = variances[finite]

    if m == 1:
        out[finite] = mu[:, 0]
        return out

    # Bracket the root of the increasing derivative.  f'(z) < 0 for
    # z <= min E_s - spread and f'(z) > 0 for z >= max E_s + spread once the
    # sqrt terms saturate; widen exponentially until both signs are secured.
    spread = np.sqrt(var.max(axis=1)) + np.ptp(mu, axis=1) + 1.0
    lo = mu.min(axis=1) - spread
    hi = mu.max(axis=1) + spread
    for _ in range(80):
        bad = _derivative(lo[:, None], mu, var) > 0
        if not bad.any():
            break
        lo[bad] -= spread[bad]
        spread[bad] *= 2
    for _ in range(80):
        bad = _derivative(hi[:, None], mu, var) < 0
        if not bad.any():
            break
        hi[bad] += spread[bad]
        spread[bad] *= 2

    for _ in range(_MAX_ITER):
        mid = 0.5 * (lo + hi)
        pos = _derivative(mid[:, None], mu, var) > 0
        hi = np.where(pos, mid, hi)
        lo = np.where(pos, lo, mid)
        if np.max(hi - lo) < _TOL * (1.0 + np.max(np.abs(mid))):
            break
    z_star = 0.5 * (lo + hi)
    out[finite] = _objective(z_star[:, None], mu, var)
    return out


def fork_join_upper_bound(means: np.ndarray, variances: np.ndarray) -> float:
    """Eq. (9) bound for a single file's fan-out (1-D inputs)."""
    means = np.asarray(means, dtype=np.float64).reshape(1, -1)
    variances = np.asarray(variances, dtype=np.float64).reshape(1, -1)
    return float(fork_join_upper_bound_batch(means, variances)[0])
