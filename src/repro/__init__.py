"""SP-Cache reproduction: load-balanced, redundancy-free cluster caching.

Reproduction of Yu, Wang, Huang, Zhang & Ben Letaief, *"SP-Cache:
load-balanced, redundancy-free cluster caching with selective partition"*
(SC 2018; journal version in IEEE TPDS 2019).

Quick tour (see ``examples/quickstart.py`` for a runnable version)::

    from repro import (ClusterSpec, Gbps, SPCachePolicy, SimulationConfig,
                       paper_fileset, poisson_trace, simulate_reads)

    cluster = ClusterSpec(n_servers=30, bandwidth=Gbps)
    files = paper_fileset(500, size_mb=100, zipf_exponent=1.05, total_rate=18)
    policy = SPCachePolicy(files, cluster)          # Algorithm 1 inside
    trace = poisson_trace(files, n_requests=5000, seed=1)
    result = simulate_reads(trace, policy, cluster, SimulationConfig(seed=2))
    print(result.summary())

Packages
--------
``repro.core``
    The paper's algorithms: selective partition sizing, the fork-join
    latency upper bound, the scale-factor search, parallel repartition,
    Theorem 1.
``repro.cluster``
    Discrete-event cluster simulator (FIFO M/G/1 and processor-sharing
    engines), goodput and straggler models, metrics.
``repro.obs``
    Observability layer: process-wide metrics registry (counters, gauges,
    streaming histograms), structured event tracing with JSONL/ring-buffer
    sinks, wall-clock profiling hooks, and trace replay (per-server load
    reconstruction).  Schema in ``docs/observability.md``.
``repro.policies``
    SP-Cache plus every baseline: EC-Cache, selective replication, simple
    partition, fixed-size chunking, single copy.
``repro.store``
    Byte-level Alluxio-like store (master/workers/client, LRU, lineage).
``repro.ec``
    GF(256) Reed-Solomon erasure coding.
``repro.workloads``
    Zipf popularity, Yahoo!/Google/Bing trace-fitted generators, arrivals.
``repro.experiments``
    Runners that regenerate every table and figure of the evaluation.
"""

from repro import obs
from repro.cluster import (
    GoodputModel,
    SimulationConfig,
    SimulationResult,
    StragglerInjector,
    imbalance_factor,
    simulate_reads,
    summarize_latencies,
)
from repro.common import GB, KB, MB, ClusterSpec, FilePopulation, Gbps, Mbps
from repro.system import RebalanceReport, SPCacheSystem
from repro.core import (
    ForkJoinModel,
    optimal_scale_factor,
    partition_counts,
    plan_repartition,
)
from repro.policies import (
    CachePolicy,
    ECCachePolicy,
    FixedChunkingPolicy,
    SelectiveReplicationPolicy,
    SimplePartitionPolicy,
    SingleCopyPolicy,
    SPCachePolicy,
)
from repro.workloads import (
    BingStragglerProfile,
    paper_fileset,
    poisson_trace,
    yahoo_file_population,
    zipf_popularity,
)

__version__ = "1.0.0"

__all__ = [
    "GB",
    "KB",
    "MB",
    "BingStragglerProfile",
    "CachePolicy",
    "ClusterSpec",
    "ECCachePolicy",
    "FilePopulation",
    "FixedChunkingPolicy",
    "ForkJoinModel",
    "Gbps",
    "GoodputModel",
    "Mbps",
    "RebalanceReport",
    "SPCacheSystem",
    "SPCachePolicy",
    "SelectiveReplicationPolicy",
    "SimplePartitionPolicy",
    "SimulationConfig",
    "SimulationResult",
    "SingleCopyPolicy",
    "StragglerInjector",
    "imbalance_factor",
    "obs",
    "optimal_scale_factor",
    "paper_fileset",
    "partition_counts",
    "plan_repartition",
    "poisson_trace",
    "simulate_reads",
    "summarize_latencies",
    "yahoo_file_population",
    "zipf_popularity",
]
