"""Erasure-coding substrate: GF(256) arithmetic and Reed-Solomon codes.

This replaces the Intel ISA-L library EC-Cache builds on.  The codec is a
systematic Vandermonde-based Reed-Solomon code over GF(2^8): a ``(k, n)``
configuration splits data into ``k`` shards and derives ``n - k`` parity
shards such that *any* ``k`` of the ``n`` shards reconstruct the original.
All bulk operations are table-driven NumPy kernels.
"""

from repro.ec.codec import RSFileCodec, pad_to_shards, split_bytes, unsplit_bytes
from repro.ec.galois import GF256
from repro.ec.reed_solomon import ReedSolomon

__all__ = [
    "GF256",
    "RSFileCodec",
    "ReedSolomon",
    "pad_to_shards",
    "split_bytes",
    "unsplit_bytes",
]
