"""Byte-level file codecs: plain splitting and Reed-Solomon shard files.

Two code paths feed on this module:

* the **store** (``repro.store``) moves real bytes through it, giving the
  functional tests something concrete to round-trip;
* Fig. 4's decoding-overhead experiment times :class:`RSFileCodec` on real
  payloads of increasing size.

Plain splitting (:func:`split_bytes` / :func:`unsplit_bytes`) is what
SP-Cache and the partitioning baselines use — no parity, no padding beyond
the last partition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.ec.reed_solomon import ReedSolomon

__all__ = ["split_bytes", "unsplit_bytes", "pad_to_shards", "RSFileCodec"]


def split_bytes(data: bytes, k: int) -> list[bytes]:
    """Split ``data`` into ``k`` near-equal contiguous partitions.

    The first ``len(data) % k`` partitions are one byte longer, so sizes
    differ by at most one and concatenation order restores the original.
    ``k`` may exceed ``len(data)`` (tiny files), yielding empty partitions.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = len(data)
    base, extra = divmod(n, k)
    parts: list[bytes] = []
    offset = 0
    for i in range(k):
        size = base + (1 if i < extra else 0)
        parts.append(data[offset : offset + size])
        offset += size
    return parts


def unsplit_bytes(parts: list[bytes]) -> bytes:
    """Reassemble partitions produced by :func:`split_bytes`."""
    return b"".join(parts)


def pad_to_shards(data: bytes, k: int) -> tuple[np.ndarray, int]:
    """Zero-pad ``data`` to a multiple of ``k`` and reshape to ``(k, width)``.

    Returns the shard matrix and the original length (needed to strip the
    padding after decode).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    orig_len = len(data)
    width = max((orig_len + k - 1) // k, 1)
    buf = np.zeros(k * width, dtype=np.uint8)
    buf[:orig_len] = np.frombuffer(data, dtype=np.uint8)
    return buf.reshape(k, width), orig_len


@dataclass
class RSFileCodec:
    """File-granularity (k, n) Reed-Solomon encode/decode with timing.

    ``encode_file`` produces ``n`` shard byte strings; ``decode_file``
    reconstructs the file from any ``k`` of them.  ``last_encode_seconds`` /
    ``last_decode_seconds`` expose wall-clock cost for the Fig. 4 and
    Fig. 22 experiments.
    """

    k: int = 10
    n: int = 14

    def __post_init__(self) -> None:
        self._rs = ReedSolomon(self.k, self.n)
        self.last_encode_seconds: float = 0.0
        self.last_decode_seconds: float = 0.0

    @property
    def overhead(self) -> float:
        return self._rs.overhead

    def encode_file(self, data: bytes) -> tuple[list[bytes], int]:
        """Return ``n`` shards plus the original length."""
        shards, orig_len = pad_to_shards(data, self.k)
        start = time.perf_counter()
        coded = self._rs.encode(shards)
        self.last_encode_seconds = time.perf_counter() - start
        return [row.tobytes() for row in coded], orig_len

    def decode_file(
        self, shard_ids: list[int], shards: list[bytes], orig_len: int
    ) -> bytes:
        """Reconstruct the original file bytes from >= k shards."""
        if not shards:
            raise ValueError("no shards supplied")
        widths = {len(s) for s in shards}
        if len(widths) != 1:
            raise ValueError("shards must be equal-length")
        mat = np.frombuffer(b"".join(shards), dtype=np.uint8).reshape(
            len(shards), widths.pop()
        )
        start = time.perf_counter()
        data = self._rs.decode(np.asarray(shard_ids), mat)
        self.last_decode_seconds = time.perf_counter() - start
        return data.reshape(-1).tobytes()[:orig_len]
