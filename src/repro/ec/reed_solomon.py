"""Systematic (k, n) Reed-Solomon erasure code over GF(256).

Construction: take the ``n x k`` Vandermonde matrix ``V`` (full column rank
for distinct evaluation points), and right-multiply by the inverse of its
top ``k x k`` block.  The result is a generator matrix whose first ``k``
rows are the identity — shards 0..k-1 are verbatim data (*systematic*), and
shards k..n-1 are parity.  Any ``k`` rows of the generator remain
invertible, so any ``k`` surviving shards reconstruct the data.

This mirrors what EC-Cache gets from ISA-L, minus SIMD: encoding cost is
``O((n-k) * k)`` vectorized GF multiplications over the shard width.
"""

from __future__ import annotations

import numpy as np

from repro.ec.galois import GF256

__all__ = ["ReedSolomon"]


class ReedSolomon:
    """A ``(k, n)`` systematic Reed-Solomon codec for equal-length shards.

    Parameters
    ----------
    k:
        Number of data shards (any ``k`` shards decode).
    n:
        Total shards, ``k <= n <= 256``.
    """

    def __init__(self, k: int, n: int) -> None:
        if not 1 <= k <= n:
            raise ValueError(f"require 1 <= k <= n, got k={k}, n={n}")
        if n > 256:
            raise ValueError("GF(256) supports at most 256 shards")
        self.k = k
        self.n = n
        vand = GF256.vandermonde(n, k)
        top_inv = GF256.mat_inv(vand[:k])
        #: ``n x k`` generator; top block is the identity.
        self.generator = GF256.matmul(vand, top_inv)

    @property
    def n_parity(self) -> int:
        return self.n - self.k

    @property
    def overhead(self) -> float:
        """Memory overhead ``(n - k) / k`` (Sec. 3.2)."""
        return (self.n - self.k) / self.k

    def encode(self, data_shards: np.ndarray) -> np.ndarray:
        """Encode ``(k, width)`` data shards into ``(n, width)`` total shards.

        The first ``k`` output rows are the input rows (systematic); the rest
        are parity.
        """
        data_shards = np.asarray(data_shards, dtype=np.uint8)
        if data_shards.ndim != 2 or data_shards.shape[0] != self.k:
            raise ValueError(
                f"expected (k={self.k}, width) data shards, got {data_shards.shape}"
            )
        parity = GF256.matmul(self.generator[self.k :], data_shards)
        return np.concatenate([data_shards, parity], axis=0)

    def decode(
        self, shard_ids: np.ndarray | list[int], shards: np.ndarray
    ) -> np.ndarray:
        """Reconstruct the ``(k, width)`` data block from any ``k`` shards.

        Parameters
        ----------
        shard_ids:
            Indices (in ``0..n-1``) of the surviving shards, length >= k.
            Extra shards beyond ``k`` are ignored (late binding hands us
            ``k + 1`` reads; we decode from the first ``k`` to arrive).
        shards:
            Array of shape ``(len(shard_ids), width)`` with the shard bytes.
        """
        shard_ids = np.asarray(shard_ids, dtype=np.int64)
        shards = np.asarray(shards, dtype=np.uint8)
        if shard_ids.ndim != 1 or shards.ndim != 2:
            raise ValueError("shard_ids must be 1-D and shards 2-D")
        if shard_ids.size != shards.shape[0]:
            raise ValueError("one id per shard row required")
        if shard_ids.size < self.k:
            raise ValueError(
                f"need at least k={self.k} shards, got {shard_ids.size}"
            )
        if np.unique(shard_ids).size != shard_ids.size:
            raise ValueError("duplicate shard ids")
        if np.any(shard_ids < 0) or np.any(shard_ids >= self.n):
            raise ValueError("shard ids out of range")

        use_ids = shard_ids[: self.k]
        use_shards = shards[: self.k]
        if np.array_equal(use_ids, np.arange(self.k)):
            return use_shards.copy()  # all-systematic fast path
        sub = self.generator[use_ids]
        inv = GF256.mat_inv(sub)
        return GF256.matmul(inv, use_shards)

    def reconstruct_shard(
        self,
        missing_id: int,
        shard_ids: np.ndarray | list[int],
        shards: np.ndarray,
    ) -> np.ndarray:
        """Rebuild one lost shard from any ``k`` survivors.

        Decodes the data block and re-applies the missing generator row —
        the repair path a cache server would run after a worker loss.
        """
        if not 0 <= missing_id < self.n:
            raise ValueError("missing_id out of range")
        data = self.decode(shard_ids, shards)
        row = self.generator[missing_id : missing_id + 1]
        return GF256.matmul(row, data)[0]
