"""The SP-Master: file metadata, popularity tracking, placement bookkeeping.

Per Sec. 6.4, the master stores, per file, the partition count ``k_i`` and
the list of servers holding each partition; it also counts accesses so the
periodic repartition can recompute popularities (reads update the counter,
Sec. 6.1).  Placement helpers implement both strategies the paper uses:
random distinct servers (initial writes, Sec. 5.1) and greedy least-loaded
(repartition, Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.common import make_rng, validate_server_count
from repro.obs import events as ev

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.popularity import PopularityMonitor
from repro.obs.causal import causal_span
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer

__all__ = ["PartitionLocation", "FileMeta", "Master"]


@dataclass(frozen=True)
class PartitionLocation:
    """Where one partition lives: worker id + block index within the file."""

    worker_id: int
    index: int


@dataclass
class FileMeta:
    """Master-side metadata for one cached file."""

    file_id: int
    size: int  # bytes of the original file
    locations: list[PartitionLocation] = field(default_factory=list)
    access_count: int = 0
    # Erasure-coding parameters if the file is EC-cached (EC-Cache baseline):
    ec_k: int | None = None
    ec_n: int | None = None
    # Replica groups if the file is replicated: each inner list holds the
    # locations of one complete copy.
    replica_groups: list[list[PartitionLocation]] | None = None

    @property
    def k(self) -> int:
        """Partition count (data partitions only for EC files)."""
        if self.ec_k is not None:
            return self.ec_k
        if self.replica_groups:
            return len(self.replica_groups[0])
        return len(self.locations)

    @property
    def worker_ids(self) -> list[int]:
        return [loc.worker_id for loc in self.locations]


class Master:
    """Metadata service for the byte-level store."""

    def __init__(
        self,
        n_workers: int,
        seed: int | None = 0,
        popularity: "PopularityMonitor | None" = None,
    ) -> None:
        self.n_workers = validate_server_count(n_workers, what="n_workers")
        self._files: dict[int, FileMeta] = {}
        self._rng = make_rng(seed)
        # Bytes of partitions placed per worker — the "load" Algorithm 2's
        # greedy placement balances.
        self.placed_bytes = np.zeros(self.n_workers)
        # Worker ids drained out of the cluster (membership epochs).
        # Slots are never recycled: ``n_workers`` is the id *space*, and
        # placement draws only from ids not in this set.
        self._inactive: set[int] = set()
        # Optional streaming popularity monitor fed by record_access —
        # the sketched twin of the exact access-count window.
        self.popularity = popularity

    def attach_popularity(self, monitor: "PopularityMonitor") -> None:
        """Feed every subsequent read into ``monitor`` (sketched counts)."""
        self.popularity = monitor

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._files

    @property
    def n_files(self) -> int:
        return len(self._files)

    def meta(self, file_id: int) -> FileMeta:
        with causal_span("master.lookup", file_id=file_id):
            return self._files[file_id]

    def files(self) -> list[FileMeta]:
        return list(self._files.values())

    # -- membership --------------------------------------------------------

    @property
    def n_active(self) -> int:
        """Workers currently serving (id space minus drained ids)."""
        return self.n_workers - len(self._inactive)

    @property
    def active_workers(self) -> list[int]:
        """Sorted ids of the workers placement may target."""
        return [w for w in range(self.n_workers) if w not in self._inactive]

    def is_active(self, worker_id: int) -> bool:
        return 0 <= worker_id < self.n_workers and worker_id not in self._inactive

    def grow(self, n: int = 1) -> list[int]:
        """Extend the id space by ``n`` fresh workers; returns their ids.

        Ids are never recycled, so the new ids continue past every id
        ever issued — matching :class:`~repro.cluster.topology.ClusterTopology`'s
        stable-id convention.
        """
        if n < 1:
            raise ValueError("grow needs n >= 1")
        new_ids = list(range(self.n_workers, self.n_workers + n))
        self.n_workers += n
        self.placed_bytes = np.concatenate([self.placed_bytes, np.zeros(n)])
        return new_ids

    def deactivate_worker(self, worker_id: int) -> None:
        """Drain a worker out of placement (membership remove)."""
        if not 0 <= worker_id < self.n_workers:
            raise ValueError(f"unknown worker id {worker_id}")
        if self.n_active <= 1 and worker_id not in self._inactive:
            raise ValueError("cannot deactivate the last active worker")
        self._inactive.add(worker_id)

    def activate_worker(self, worker_id: int) -> None:
        """Return a drained worker to placement (membership re-add)."""
        if not 0 <= worker_id < self.n_workers:
            raise ValueError(f"unknown worker id {worker_id}")
        self._inactive.discard(worker_id)

    # -- placement ---------------------------------------------------------

    def choose_random_workers(self, k: int) -> list[int]:
        """``k`` distinct random active workers (initial placement, Sec. 5.1)."""
        if k > self.n_active:
            raise ValueError(
                f"cannot place {k} partitions on {self.n_active} workers "
                "without co-locating"
            )
        with causal_span("master.place", strategy="random", k=k):
            if not self._inactive:
                # Fast path, and the exact draw order of the fixed-topology
                # code — seeded runs stay byte-identical.
                return list(
                    self._rng.choice(self.n_workers, size=k, replace=False)
                )
            active = np.asarray(self.active_workers, dtype=np.int64)
            picks = self._rng.choice(active.size, size=k, replace=False)
            return [int(active[p]) for p in picks]

    def choose_least_loaded_workers(self, k: int) -> list[int]:
        """``k`` distinct least-loaded active workers (Algorithm 2)."""
        if k > self.n_active:
            raise ValueError(
                f"cannot place {k} partitions on {self.n_active} workers"
            )
        with causal_span("master.place", strategy="least_loaded", k=k):
            if not self._inactive:
                return list(np.argsort(self.placed_bytes, kind="stable")[:k])
            loads = self.placed_bytes.copy()
            loads[sorted(self._inactive)] = np.inf
            return list(np.argsort(loads, kind="stable")[:k])

    # -- registration ------------------------------------------------------

    def register_file(
        self,
        file_id: int,
        size: int,
        locations: list[PartitionLocation],
        ec_k: int | None = None,
        ec_n: int | None = None,
        replica_groups: list[list[PartitionLocation]] | None = None,
    ) -> FileMeta:
        """Record a newly written file and account its placed bytes."""
        if file_id in self._files:
            raise ValueError(f"file {file_id} already registered")
        meta = FileMeta(
            file_id=file_id,
            size=size,
            locations=list(locations),
            ec_k=ec_k,
            ec_n=ec_n,
            replica_groups=replica_groups,
        )
        self._files[file_id] = meta
        per_loc = size / max(len(locations), 1)
        if replica_groups:
            per_loc = size / max(len(replica_groups[0]), 1)
        for loc in meta.locations:
            self.placed_bytes[loc.worker_id] += per_loc
        reg = get_registry()
        reg.counter("master.files_registered").inc()
        reg.counter("master.bytes_registered").inc(size)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                ev.FILE_REGISTER,
                file_id=file_id,
                bytes=size,
                k=meta.k,
                workers=meta.worker_ids,
            )
        return meta

    def unregister_file(self, file_id: int) -> FileMeta:
        meta = self._files.pop(file_id)
        per_loc = meta.size / max(len(meta.locations), 1)
        if meta.replica_groups:
            per_loc = meta.size / max(len(meta.replica_groups[0]), 1)
        for loc in meta.locations:
            self.placed_bytes[loc.worker_id] -= per_loc
        get_registry().counter("master.files_unregistered").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(ev.FILE_UNREGISTER, file_id=file_id, bytes=meta.size)
        return meta

    def relocate_file(
        self,
        file_id: int,
        locations: list[PartitionLocation],
        replica_groups: list[list[PartitionLocation]] | None = None,
    ) -> FileMeta:
        """Replace a file's partition layout (repartition path).

        The access-count window survives the move — repartitioning a file
        must not erase the popularity evidence that triggered it.  For a
        replicated file whose copies moved (e.g. re-placed off a removed
        worker), pass the rebuilt ``replica_groups``; ``None`` keeps the
        old groups.
        """
        meta = self.unregister_file(file_id)
        new_meta = self.register_file(
            file_id,
            meta.size,
            locations,
            ec_k=meta.ec_k,
            ec_n=meta.ec_n,
            replica_groups=(
                replica_groups
                if replica_groups is not None
                else meta.replica_groups
            ),
        )
        new_meta.access_count = meta.access_count
        get_registry().counter("master.relocations").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                ev.FILE_RELOCATE,
                file_id=file_id,
                old_k=meta.k,
                new_k=new_meta.k,
                workers=new_meta.worker_ids,
            )
        return new_meta

    # -- popularity --------------------------------------------------------

    def record_access(self, file_id: int) -> None:
        """Bump the access counter (done on every read, Sec. 6.1)."""
        self._files[file_id].access_count += 1
        get_registry().counter("master.reads").inc()
        if self.popularity is not None:
            self.popularity.observe(file_id)

    def reset_access_counts(self) -> None:
        """Start a new measurement window (after each repartition round)."""
        for meta in self._files.values():
            meta.access_count = 0

    def popularity_snapshot(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(file_ids, sizes, popularities) from the access-count window.

        Files never accessed in the window share the residual minimum mass
        (one virtual access each) so that popularities stay a valid
        probability vector for the scale-factor search.
        """
        ids = np.array(sorted(self._files), dtype=np.int64)
        sizes = np.array([self._files[i].size for i in ids], dtype=np.float64)
        counts = np.array(
            [self._files[i].access_count for i in ids], dtype=np.float64
        )
        counts = np.maximum(counts, 1.0)
        return ids, sizes, counts / counts.sum()
