"""A cache server's data plane: capacity-bounded in-memory block store.

Blocks are keyed by ``(file_id, partition_index)``.  Eviction is LRU at
block granularity; the master is responsible for noticing dangling metadata
after evictions (mirroring Alluxio, where workers evict autonomously and
the master learns via heartbeats).
"""

from __future__ import annotations

from repro.store.lru import LRUCache

__all__ = ["Worker"]

BlockKey = tuple[int, int]


class Worker:
    """One cache server holding partition blocks in memory."""

    def __init__(self, worker_id: int, capacity: float = float("inf")) -> None:
        self.worker_id = worker_id
        self._blocks: dict[BlockKey, bytes] = {}
        self._lru: LRUCache | None = None
        if capacity != float("inf"):
            self._lru = LRUCache(capacity, on_evict=self._drop)
        self.capacity = capacity
        self.bytes_served = 0
        self.evicted_blocks: list[BlockKey] = []

    def _drop(self, key: BlockKey, _size: float) -> None:
        self._blocks.pop(key, None)
        self.evicted_blocks.append(key)

    def __contains__(self, key: BlockKey) -> bool:
        return key in self._blocks

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    @property
    def used_bytes(self) -> float:
        if self._lru is not None:
            return self._lru.used_bytes
        return float(sum(len(b) for b in self._blocks.values()))

    def put_block(self, file_id: int, index: int, data: bytes) -> list[BlockKey]:
        """Store a block; returns keys evicted to make room."""
        key = (file_id, index)
        self._blocks[key] = bytes(data)
        if self._lru is not None:
            before = len(self.evicted_blocks)
            self._lru.put(key, len(data))
            return self.evicted_blocks[before:]
        return []

    def get_block(self, file_id: int, index: int) -> bytes:
        """Fetch a block; raises ``KeyError`` when absent (evicted/lost)."""
        key = (file_id, index)
        data = self._blocks[key]
        if self._lru is not None:
            self._lru.touch(key)
        self.bytes_served += len(data)
        return data

    def delete_block(self, file_id: int, index: int) -> None:
        key = (file_id, index)
        self._blocks.pop(key, None)
        if self._lru is not None and key in self._lru:
            self._lru.remove(key)

    def delete_file(self, file_id: int) -> int:
        """Drop every block of ``file_id``; returns how many were dropped."""
        keys = [k for k in self._blocks if k[0] == file_id]
        for k in keys:
            self.delete_block(*k)
        return len(keys)

    def crash(self) -> None:
        """Lose all in-memory state (worker failure in the Sec. 8 scenario)."""
        self._blocks.clear()
        if self._lru is not None:
            self._lru = LRUCache(self.capacity, on_evict=self._drop)
