"""A cache server's data plane: capacity-bounded in-memory block store.

Blocks are keyed by ``(file_id, partition_index)``.  Eviction is LRU at
block granularity; the master is responsible for noticing dangling metadata
after evictions (mirroring Alluxio, where workers evict autonomously and
the master learns via heartbeats).

Observability: block puts/gets/evictions/misses and crashes feed the
process-wide metrics registry (``store.*`` counters labelled by
``worker_id``) and, when tracing is enabled, emit the ``block_*`` /
``worker_crash`` events of :mod:`repro.obs.events`.  A lookup of an absent
block raises :class:`BlockNotFound` — a :class:`KeyError` subclass, so
existing recovery paths that catch ``KeyError`` keep working — and counts
as a miss.
"""

from __future__ import annotations

from repro.obs import events as ev
from repro.obs.causal import causal_span
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer
from repro.store.lru import LRUCache

#: Bucket ladder for block-size histograms: powers of four from 1 KiB to
#: 1 GiB (the default seconds-scale ladder would funnel every block into
#: the overflow bucket).
BLOCK_BYTES_BUCKETS: tuple[float, ...] = tuple(
    float(1024 * 4**i) for i in range(11)
)

__all__ = ["BlockNotFound", "Worker"]

BlockKey = tuple[int, int]


class BlockNotFound(KeyError):
    """A requested block is absent from this worker (evicted, lost, or
    never written).  Subclasses ``KeyError`` for backward compatibility."""

    def __init__(self, worker_id: int, file_id: int, index: int) -> None:
        super().__init__((file_id, index))
        self.worker_id = worker_id
        self.file_id = file_id
        self.index = index

    def __str__(self) -> str:
        return (
            f"worker {self.worker_id} holds no block "
            f"({self.file_id}, {self.index})"
        )


class Worker:
    """One cache server holding partition blocks in memory."""

    def __init__(self, worker_id: int, capacity: float = float("inf")) -> None:
        self.worker_id = worker_id
        self._blocks: dict[BlockKey, bytes] = {}
        self._lru: LRUCache | None = None
        if capacity != float("inf"):
            self._lru = LRUCache(capacity, on_evict=self._drop)
        self.capacity = capacity
        self.bytes_served = 0
        self.evicted_blocks: list[BlockKey] = []

    def _drop(self, key: BlockKey, _size: float) -> None:
        with causal_span(
            "worker.evict", worker_id=self.worker_id, file_id=key[0]
        ):
            self._blocks.pop(key, None)
            self.evicted_blocks.append(key)
            get_registry().counter(
                "store.block_evictions", worker_id=self.worker_id
            ).inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    ev.BLOCK_EVICT,
                    worker_id=self.worker_id,
                    file_id=key[0],
                    index=key[1],
                )

    def _miss(self, op: str, file_id: int, index: int) -> BlockNotFound:
        get_registry().counter(
            "store.block_misses", worker_id=self.worker_id, op=op
        ).inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                ev.BLOCK_MISS,
                worker_id=self.worker_id,
                file_id=file_id,
                index=index,
                op=op,
            )
        return BlockNotFound(self.worker_id, file_id, index)

    def __contains__(self, key: BlockKey) -> bool:
        return key in self._blocks

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    @property
    def used_bytes(self) -> float:
        if self._lru is not None:
            return self._lru.used_bytes
        return float(sum(len(b) for b in self._blocks.values()))

    def put_block(self, file_id: int, index: int, data: bytes) -> list[BlockKey]:
        """Store a block; returns keys evicted to make room."""
        with causal_span(
            "worker.write",
            worker_id=self.worker_id,
            file_id=file_id,
            index=index,
            bytes=len(data),
        ):
            return self._put_block(file_id, index, data)

    def _put_block(
        self, file_id: int, index: int, data: bytes
    ) -> list[BlockKey]:
        key = (file_id, index)
        self._blocks[key] = bytes(data)
        reg = get_registry()
        reg.counter("store.bytes_stored", worker_id=self.worker_id).inc(
            len(data)
        )
        # Block-size distribution per op (deterministic byte sizes, so
        # identical seeded runs diff clean) — the write-path scrape
        # surface for the OpenMetrics export.
        reg.histogram(
            "store.block_bytes",
            buckets=BLOCK_BYTES_BUCKETS,
            op="put",
            worker_id=self.worker_id,
        ).observe(len(data))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                ev.BLOCK_PUT,
                worker_id=self.worker_id,
                file_id=file_id,
                index=index,
                bytes=len(data),
            )
        if self._lru is not None:
            before = len(self.evicted_blocks)
            self._lru.put(key, len(data))
            return self.evicted_blocks[before:]
        return []

    def get_block(self, file_id: int, index: int) -> bytes:
        """Fetch a block; raises :class:`BlockNotFound` when absent
        (evicted/lost) and counts the miss in the metrics registry."""
        with causal_span(
            "worker.read",
            worker_id=self.worker_id,
            file_id=file_id,
            index=index,
        ):
            return self._get_block(file_id, index)

    def _get_block(self, file_id: int, index: int) -> bytes:
        key = (file_id, index)
        data = self._blocks.get(key)
        if data is None:
            raise self._miss("get", file_id, index)
        if self._lru is not None:
            self._lru.touch(key)
        self.bytes_served += len(data)
        reg = get_registry()
        reg.counter("store.bytes_served", worker_id=self.worker_id).inc(
            len(data)
        )
        reg.histogram(
            "store.block_bytes",
            buckets=BLOCK_BYTES_BUCKETS,
            op="get",
            worker_id=self.worker_id,
        ).observe(len(data))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                ev.BLOCK_GET,
                worker_id=self.worker_id,
                file_id=file_id,
                index=index,
                bytes=len(data),
            )
        return data

    def delete_block(self, file_id: int, index: int) -> None:
        """Drop a block; raises :class:`BlockNotFound` when absent."""
        key = (file_id, index)
        if self._blocks.pop(key, None) is None:
            raise self._miss("delete", file_id, index)
        if self._lru is not None and key in self._lru:
            self._lru.remove(key)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                ev.BLOCK_DELETE,
                worker_id=self.worker_id,
                file_id=file_id,
                index=index,
            )

    def delete_file(self, file_id: int) -> int:
        """Drop every block of ``file_id``; returns how many were dropped."""
        keys = [k for k in self._blocks if k[0] == file_id]
        for k in keys:
            self.delete_block(*k)
        return len(keys)

    def crash(self) -> None:
        """Lose all in-memory state (worker failure in the Sec. 8 scenario)."""
        lost = len(self._blocks)
        self._blocks.clear()
        if self._lru is not None:
            self._lru = LRUCache(self.capacity, on_evict=self._drop)
        get_registry().counter(
            "store.worker_crashes", worker_id=self.worker_id
        ).inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                ev.WORKER_CRASH, worker_id=self.worker_id, lost_blocks=lost
            )
