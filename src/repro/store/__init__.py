"""Byte-level in-memory store modeled on Alluxio's master/worker/client split.

The simulator (:mod:`repro.cluster`) answers *timing* questions; this
package answers *functional* ones with real bytes: partitions round-trip
through workers, Reed-Solomon parity actually decodes, LRU actually evicts,
and lost partitions are recovered from the under-store via lineage
(Sec. 8's fault-tolerance story).
"""

from repro.store.lineage import LineageGraph, LineageRecord, ServerRemovedError
from repro.store.lru import LRUCache
from repro.store.master import FileMeta, Master, PartitionLocation
from repro.store.store_client import StoreClient
from repro.store.under_store import UnderStore
from repro.store.worker import BlockNotFound, Worker

__all__ = [
    "BlockNotFound",
    "FileMeta",
    "LRUCache",
    "LineageGraph",
    "LineageRecord",
    "Master",
    "PartitionLocation",
    "ServerRemovedError",
    "StoreClient",
    "UnderStore",
    "Worker",
]
