"""Lineage-based recovery (the Alluxio mechanism SP-Cache leans on, Sec. 8).

SP-Cache itself is redundancy-free, so a lost partition cannot be rebuilt
from cache contents.  Alluxio's answer, which we reproduce: files are
periodically checkpointed to the under-store, and files not yet persisted
carry a *lineage* record — which parent files and which deterministic
transformation produced them — so they can be recomputed on loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs.causal import causal_span
from repro.obs.metrics import get_registry

__all__ = ["LineageRecord", "LineageGraph", "ServerRemovedError"]


class ServerRemovedError(KeyError):
    """A file is unrecoverable because its hosting server left the cluster.

    Raised instead of a bare ``KeyError`` when recovery can tell that the
    blocks were not merely evicted but lived on a worker a membership
    epoch removed — the actionable difference between "re-read later" and
    "this data needs a checkpoint or lineage to ever come back".
    Subclasses :class:`KeyError` so pre-membership recovery paths that
    catch ``KeyError`` keep working.
    """

    def __init__(self, file_id: int, server_id: int) -> None:
        super().__init__(file_id)
        self.file_id = file_id
        self.server_id = server_id

    def __str__(self) -> str:
        return (
            f"file {self.file_id} is unrecoverable: server {self.server_id} "
            "was removed from the cluster and the file is neither "
            "checkpointed nor covered by lineage"
        )


@dataclass(frozen=True)
class LineageRecord:
    """How to recompute one file from its parents."""

    file_id: int
    parents: tuple[int, ...]
    recompute: Callable[[list[bytes]], bytes]


class LineageGraph:
    """A DAG of lineage records with recursive recovery."""

    def __init__(self) -> None:
        self._records: dict[int, LineageRecord] = {}

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._records

    def register(
        self,
        file_id: int,
        parents: tuple[int, ...],
        recompute: Callable[[list[bytes]], bytes],
    ) -> None:
        """Record a file's derivation.  Cycles are rejected."""
        if file_id in parents:
            raise ValueError("a file cannot be its own parent")
        self._records[file_id] = LineageRecord(file_id, tuple(parents), recompute)
        if self._has_cycle(file_id):
            del self._records[file_id]
            raise ValueError(f"lineage for file {file_id} would create a cycle")

    def _has_cycle(self, start: int) -> bool:
        seen: set[int] = set()
        stack = [start]
        first = True
        while stack:
            node = stack.pop()
            if node == start and not first:
                return True
            first = False
            if node in seen:
                continue
            seen.add(node)
            rec = self._records.get(node)
            if rec:
                stack.extend(rec.parents)
        return False

    def recover(
        self,
        file_id: int,
        read_source: Callable[[int], bytes | None],
        lost_server_of: Callable[[int], int | None] | None = None,
    ) -> bytes:
        """Recompute ``file_id`` bottom-up.

        ``read_source(fid)`` should return the bytes of ``fid`` if they are
        available from cache or the under-store, else ``None``; unavailable
        parents are recovered recursively through their own lineage.
        Raises ``KeyError`` when a needed file has neither source bytes nor
        lineage — or, when ``lost_server_of(fid)`` names a departed server
        holding the file's blocks, the sharper
        :class:`ServerRemovedError` so callers can tell a membership loss
        from an eviction.

        Each recursion level opens one ``lineage.recover`` causal span, so
        a traced recovery shows the full bottom-up recomputation chain
        (which parents had to be rebuilt, and how deep the DAG went).
        """
        with causal_span("lineage.recover", file_id=file_id):
            available = read_source(file_id)
            if available is not None:
                return available
            rec = self._records.get(file_id)
            if rec is None:
                if lost_server_of is not None:
                    server_id = lost_server_of(file_id)
                    if server_id is not None:
                        raise ServerRemovedError(file_id, server_id)
                raise KeyError(
                    f"file {file_id} is lost: not persisted and has no "
                    "lineage"
                )
            get_registry().counter("lineage.recomputes").inc()
            parent_bytes = [
                self.recover(p, read_source, lost_server_of)
                for p in rec.parents
            ]
            return rec.recompute(parent_bytes)
