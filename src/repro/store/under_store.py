"""Durable backing store (the paper's S3/HDFS layer under Alluxio).

Sec. 8: SP-Cache relies on the under-store plus Alluxio's checkpointing for
fault tolerance — lost cache data is re-read from persisted copies, and
never-persisted files are recomputed via lineage.  This in-process stand-in
keeps persisted bytes in a dict and exposes the checkpoint/read interface
the store client and lineage recovery need.
"""

from __future__ import annotations

__all__ = ["UnderStore"]


class UnderStore:
    """A durable key-value byte store with simple checkpoint bookkeeping."""

    def __init__(self) -> None:
        self._data: dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._data

    def __len__(self) -> int:
        return len(self._data)

    def checkpoint(self, file_id: int, data: bytes) -> None:
        """Persist a file (idempotent overwrite)."""
        self._data[file_id] = bytes(data)
        self.writes += 1

    def read(self, file_id: int) -> bytes:
        """Read a persisted file; raises ``KeyError`` if never checkpointed."""
        self.reads += 1
        return self._data[file_id]

    def is_persisted(self, file_id: int) -> bool:
        return file_id in self._data

    def delete(self, file_id: int) -> None:
        del self._data[file_id]
