"""The SP-Client: byte-level read/write/repartition against the store.

Implements the data plane of Fig. 9a for all caching schemes so functional
tests can round-trip real bytes:

* plain partitioning (SP-Cache and the partitioning baselines): split into
  ``k`` contiguous partitions on ``k`` distinct workers, reassemble on read;
* erasure coding (EC-Cache): (k, n) Reed-Solomon shards with late binding —
  the client asks ``k + 1`` random shards and decodes from the first ``k``
  that answer;
* selective replication: whole-file copies in distinct replica groups, one
  picked uniformly per read.

Reads record accesses at the master (popularity tracking, Sec. 6.1) and
fall back to the under-store, then lineage recomputation, when blocks were
evicted or a worker crashed (Sec. 8).
"""

from __future__ import annotations

from contextlib import suppress

import numpy as np

import time

from repro.common import make_rng
from repro.ec.codec import RSFileCodec, split_bytes, unsplit_bytes
from repro.obs import events as ev
from repro.obs.causal import causal_span
from repro.obs.metrics import get_registry
from repro.obs.spans import span
from repro.obs.tracing import get_tracer
from repro.store.lineage import LineageGraph, ServerRemovedError
from repro.store.master import FileMeta, Master, PartitionLocation
from repro.store.under_store import UnderStore
from repro.store.worker import BlockNotFound, Worker

__all__ = ["StoreClient"]


class StoreClient:
    """Client facade over a master, its workers, and the under-store."""

    def __init__(
        self,
        master: Master,
        workers: list[Worker],
        under_store: UnderStore | None = None,
        lineage: LineageGraph | None = None,
        seed: int | None = 0,
    ) -> None:
        if len(workers) != master.n_workers:
            raise ValueError("one Worker per master slot required")
        self.master = master
        self.workers = workers
        self.under_store = under_store or UnderStore()
        self.lineage = lineage or LineageGraph()
        self._rng = make_rng(seed)
        self._ec_meta: dict[int, tuple[RSFileCodec, int]] = {}  # codec, orig_len
        self.recoveries = 0
        #: Worker ids removed by membership epochs.  Their Worker objects
        #: stay in ``self.workers`` (ids are stable, never recycled) but
        #: reads treat their blocks as gone and recovery re-places them.
        self.removed: set[int] = set()

    # -- membership ----------------------------------------------------------

    def apply_epoch(self, epoch) -> None:
        """Reconcile the data plane with a membership epoch.

        ``epoch`` is an :class:`~repro.cluster.topology.EpochView`: fresh
        stable ids grow the worker list (empty caches, same capacity as
        worker 0), departed ids are drained at the master and marked
        removed here so reads on their blocks fall through to recovery —
        which re-places recovered files onto the *current* epoch.
        """
        max_id = max(epoch.server_ids)
        if max_id >= self.master.n_workers:
            self.master.grow(max_id + 1 - self.master.n_workers)
        capacity = self.workers[0].capacity if self.workers else float("inf")
        while len(self.workers) < self.master.n_workers:
            self.workers.append(Worker(len(self.workers), capacity=capacity))
        active = set(epoch.server_ids)
        self.removed = set(range(self.master.n_workers)) - active
        for wid in range(self.master.n_workers):
            if wid in active:
                self.master.activate_worker(wid)
            else:
                self.master.deactivate_worker(wid)

    # -- writes ------------------------------------------------------------

    def write(
        self,
        file_id: int,
        data: bytes,
        k: int = 1,
        placement: str = "random",
    ) -> FileMeta:
        """Plain-partition write: ``k`` contiguous partitions, no parity."""
        with span("store.write", kind="partitioned"), causal_span(
            "store.put", file_id=file_id, kind="partitioned", k=k
        ):
            worker_ids = self._choose(k, placement)
            parts = split_bytes(data, k)
            locations = []
            for index, (wid, part) in enumerate(zip(worker_ids, parts)):
                self.workers[wid].put_block(file_id, index, part)
                locations.append(PartitionLocation(worker_id=wid, index=index))
            return self.master.register_file(file_id, len(data), locations)

    def write_ec(
        self, file_id: int, data: bytes, k: int = 10, n: int = 14
    ) -> FileMeta:
        """Erasure-coded write: ``n`` Reed-Solomon shards on ``n`` workers."""
        with span("store.write", kind="ec"), causal_span(
            "store.put", file_id=file_id, kind="ec", k=k, n=n
        ):
            codec = RSFileCodec(k=k, n=n)
            shards, orig_len = codec.encode_file(data)
            worker_ids = self._choose(n, "random")
            locations = []
            for index, (wid, shard) in enumerate(zip(worker_ids, shards)):
                self.workers[wid].put_block(file_id, index, shard)
                locations.append(PartitionLocation(worker_id=wid, index=index))
            self._ec_meta[file_id] = (codec, orig_len)
            return self.master.register_file(
                file_id, len(data), locations, ec_k=k, ec_n=n
            )

    def write_replicated(
        self, file_id: int, data: bytes, replicas: int = 1
    ) -> FileMeta:
        """Whole-file copies: ``replicas`` groups on distinct workers each."""
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        with span("store.write", kind="replicated"), causal_span(
            "store.put", file_id=file_id, kind="replicated", replicas=replicas
        ):
            groups: list[list[PartitionLocation]] = []
            flat: list[PartitionLocation] = []
            for r in range(replicas):
                wid = self._choose(1, "random")[0]
                self.workers[wid].put_block(file_id, r, data)
                loc = PartitionLocation(worker_id=wid, index=r)
                groups.append([loc])
                flat.append(loc)
            return self.master.register_file(
                file_id, len(data), flat, replica_groups=groups
            )

    # -- reads -------------------------------------------------------------

    def read(self, file_id: int) -> bytes:
        """Read a file through whichever scheme wrote it."""
        with span("store.read"), causal_span("store.read", file_id=file_id):
            meta = self.master.meta(file_id)
            self.master.record_access(file_id)
            if meta.ec_k is not None:
                return self._read_ec(meta)
            if meta.replica_groups:
                return self._read_replicated(meta)
            return self._read_partitioned(meta)

    def _get_from(self, meta: FileMeta, loc: PartitionLocation) -> bytes:
        """Fetch one block, treating removed workers' blocks as lost."""
        if loc.worker_id in self.removed:
            raise BlockNotFound(loc.worker_id, meta.file_id, loc.index)
        return self.workers[loc.worker_id].get_block(meta.file_id, loc.index)

    def _read_partitioned(self, meta: FileMeta) -> bytes:
        parts: list[bytes] = []
        for loc in sorted(meta.locations, key=lambda l: l.index):
            try:
                parts.append(self._get_from(meta, loc))
            except KeyError:
                return self._recover(meta)
        return unsplit_bytes(parts)

    def _read_ec(self, meta: FileMeta) -> bytes:
        codec, orig_len = self._ec_meta[meta.file_id]
        k = codec.k
        # Late binding: request k + 1 random shards, decode from the first k
        # that actually answer; pull further shards only if too many failed.
        order = self._rng.permutation(len(meta.locations))
        ids: list[int] = []
        shards: list[bytes] = []
        want = min(k + 1, len(order))
        for pos in order:
            loc = meta.locations[pos]
            try:
                shard = self._get_from(meta, loc)
            except KeyError:
                continue
            ids.append(loc.index)
            shards.append(shard)
            if len(ids) >= want and len(ids) >= k:
                break
        if len(ids) < k:
            return self._recover(meta)
        return codec.decode_file(ids[:k], shards[:k], orig_len)

    def _read_replicated(self, meta: FileMeta) -> bytes:
        assert meta.replica_groups
        start = int(self._rng.integers(len(meta.replica_groups)))
        n_groups = len(meta.replica_groups)
        for offset in range(n_groups):
            group = meta.replica_groups[(start + offset) % n_groups]
            loc = group[0]
            try:
                return self._get_from(meta, loc)
            except KeyError:
                continue
        return self._recover(meta)

    # -- recovery (Sec. 8) ---------------------------------------------------

    def _recover(self, meta: FileMeta) -> bytes:
        """Rebuild a file whose cached blocks are gone.

        Order follows Alluxio: persisted copy first, lineage recomputation
        second.  The recovered bytes are re-cached under the file's original
        layout so subsequent reads hit memory again.
        """
        self.recoveries += 1
        get_registry().counter("store.recoveries").inc()

        def read_source(fid: int) -> bytes | None:
            if self.under_store.is_persisted(fid):
                return self.under_store.read(fid)
            if fid != meta.file_id and fid in self.master:
                try:
                    return self.read(fid)
                except KeyError:
                    return None
            return None

        def lost_server_of(fid: int) -> int | None:
            # Lets the lineage layer raise ServerRemovedError (with the
            # departed worker's id) rather than a bare KeyError.
            if fid in self.master:
                for loc in self.master.meta(fid).locations:
                    if loc.worker_id in self.removed:
                        return loc.worker_id
            return None

        t0 = time.perf_counter()
        with causal_span("store.recover", file_id=meta.file_id):
            data = self.lineage.recover(meta.file_id, read_source, lost_server_of)
            meta = self._recache(meta, data)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                ev.RECOVERY,
                file_id=meta.file_id,
                bytes=len(data),
                wall_s=time.perf_counter() - t0,
            )
        return data

    def _recache(self, meta: FileMeta, data: bytes) -> FileMeta:
        # A recovered file whose layout references departed workers is
        # re-placed onto the current epoch's active workers first.
        if self.removed and any(
            loc.worker_id in self.removed for loc in meta.locations
        ):
            meta = self._replace_lost_locations(meta)
        if meta.ec_k is not None:
            codec, _ = self._ec_meta[meta.file_id]
            shards, _ = codec.encode_file(data)
            for loc in meta.locations:
                self.workers[loc.worker_id].put_block(
                    meta.file_id, loc.index, shards[loc.index]
                )
        elif meta.replica_groups:
            for group in meta.replica_groups:
                for loc in group:
                    self.workers[loc.worker_id].put_block(
                        meta.file_id, loc.index, data
                    )
        else:
            parts = split_bytes(data, len(meta.locations))
            for loc in meta.locations:
                self.workers[loc.worker_id].put_block(
                    meta.file_id, loc.index, parts[loc.index]
                )
        return meta

    def _replace_lost_locations(self, meta: FileMeta) -> FileMeta:
        """Move locations on departed workers to least-loaded active ones.

        Surviving locations stay put; each lost one is re-pointed at a
        distinct active worker not already holding a piece of the file.
        """
        survivors = {
            loc.worker_id
            for loc in meta.locations
            if loc.worker_id not in self.removed
        }
        candidates = [
            w for w in self.master.active_workers if w not in survivors
        ]
        candidates.sort(key=lambda w: (self.master.placed_bytes[w], w))
        fresh = iter(candidates)
        moved: dict[PartitionLocation, PartitionLocation] = {}
        new_locations: list[PartitionLocation] = []
        for loc in meta.locations:
            if loc.worker_id in self.removed:
                try:
                    wid = next(fresh)
                except StopIteration:
                    raise ValueError(
                        f"not enough active workers to re-place file "
                        f"{meta.file_id}"
                    ) from None
                new_loc = PartitionLocation(worker_id=wid, index=loc.index)
                moved[loc] = new_loc
                new_locations.append(new_loc)
            else:
                new_locations.append(loc)
        replica_groups = None
        if meta.replica_groups is not None:
            replica_groups = [
                [moved.get(loc, loc) for loc in group]
                for group in meta.replica_groups
            ]
        return self.master.relocate_file(
            meta.file_id, new_locations, replica_groups=replica_groups
        )

    # -- maintenance ---------------------------------------------------------

    def checkpoint(self, file_id: int) -> None:
        """Persist the current file contents to the under-store."""
        self.under_store.checkpoint(file_id, self.read(file_id))

    def repartition(
        self, file_id: int, new_k: int, placement: str = "least_loaded"
    ) -> FileMeta:
        """Reassemble a plain-partitioned file and re-split it to ``new_k``.

        The data-plane half of Algorithm 2: an SP-Repartitioner collects the
        partitions, re-splits, and redistributes onto the chosen workers.
        """
        meta = self.master.meta(file_id)
        if meta.ec_k is not None or meta.replica_groups:
            raise ValueError("repartition applies to plain-partitioned files")
        with span("store.repartition", new_k=new_k), causal_span(
            "store.repartition", file_id=file_id, new_k=new_k
        ):
            return self._repartition(meta, file_id, new_k, placement)

    def _repartition(
        self, meta: FileMeta, file_id: int, new_k: int, placement: str
    ) -> FileMeta:
        data = self._read_partitioned(meta)
        for loc in meta.locations:
            # A block evicted since the read is already gone — fine here.
            with suppress(BlockNotFound):
                self.workers[loc.worker_id].delete_block(file_id, loc.index)
        worker_ids = self._choose(new_k, placement)
        parts = split_bytes(data, new_k)
        locations = []
        for index, (wid, part) in enumerate(zip(worker_ids, parts)):
            self.workers[wid].put_block(file_id, index, part)
            locations.append(PartitionLocation(worker_id=wid, index=index))
        return self.master.relocate_file(file_id, locations)

    def _choose(self, k: int, placement: str) -> list[int]:
        if placement == "random":
            return self.master.choose_random_workers(k)
        if placement == "least_loaded":
            return self.master.choose_least_loaded_workers(k)
        raise ValueError(f"unknown placement strategy: {placement!r}")
