"""Byte-budgeted LRU cache used at both granularities.

Two consumers: the cluster simulator tracks file-granularity residency under
a throttled cluster-wide budget (Secs. 7.6/7.7 assume file-level LRU
replacement), and the store's workers track partition blocks.  Both need the
same structure — an access-ordered map whose entries carry a byte size and
whose insertions evict from the cold end until the budget holds.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterator

__all__ = ["LRUCache"]


class LRUCache:
    """LRU over hashable keys with byte-sized entries.

    ``capacity`` is the byte budget.  Items larger than the whole budget are
    rejected by :meth:`put` (returning the would-be evictions is meaningless
    when the item itself cannot fit).
    """

    def __init__(
        self,
        capacity: float,
        on_evict: Callable[[Hashable, float], None] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        self._sizes: OrderedDict[Hashable, float] = OrderedDict()
        self._used = 0.0
        self._on_evict = on_evict
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._sizes)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._sizes

    def __iter__(self) -> Iterator[Hashable]:
        """Keys from coldest (LRU) to hottest (MRU)."""
        return iter(self._sizes)

    @property
    def used_bytes(self) -> float:
        return self._used

    @property
    def free_bytes(self) -> float:
        return self.capacity - self._used

    def size_of(self, key: Hashable) -> float:
        return self._sizes[key]

    def touch(self, key: Hashable) -> bool:
        """Record an access: returns True on hit (and refreshes recency)."""
        if key in self._sizes:
            self._sizes.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def put(self, key: Hashable, size: float) -> list[Hashable]:
        """Insert/refresh ``key`` with byte ``size``; return evicted keys.

        Re-inserting an existing key updates its size and recency.  Raises
        ``ValueError`` if the item alone exceeds the budget.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        if size > self.capacity:
            raise ValueError(
                f"item of {size} bytes exceeds cache capacity {self.capacity}"
            )
        if key in self._sizes:
            self._used -= self._sizes.pop(key)
        evicted: list[Hashable] = []
        while self._used + size > self.capacity and self._sizes:
            old_key, old_size = self._sizes.popitem(last=False)
            self._used -= old_size
            self.evictions += 1
            evicted.append(old_key)
            if self._on_evict is not None:
                self._on_evict(old_key, old_size)
        self._sizes[key] = float(size)
        self._used += size
        return evicted

    def remove(self, key: Hashable) -> float:
        """Drop ``key`` (no eviction callback); returns its size."""
        size = self._sizes.pop(key)
        self._used -= size
        return size

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0
