"""The assembled SP-Cache system (Fig. 9's architecture, end to end).

:class:`SPCacheSystem` wires the pieces the rest of the library provides
into the deployment the paper describes:

* an **SP-Master** (:class:`repro.store.Master`) holding metadata and
  access counts;
* **cache workers** (:class:`repro.store.Worker`) holding real partition
  bytes with LRU eviction;
* an **SP-Client** facade — :meth:`write` splits per Eq. (1) under the
  current scale factor, :meth:`read` collects partitions, reassembles, and
  bumps popularity;
* **periodic load re-balancing** — :meth:`rebalance` re-estimates
  popularity from the master's access window, re-runs Algorithm 1,
  plans Algorithm 2, and has per-server repartitioners re-split only the
  changed files (greedy least-loaded placement).

This is the byte-level twin of the simulator experiments: the same
algorithms drive actual data movement, so integration tests can assert
both *correctness* (bytes round-trip across rebalances) and *mechanism*
(only changed files move; hot files hold more partitions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.network import GoodputModel
from repro.common import ClusterSpec, FilePopulation, make_rng
from repro.core.partitioner import partition_counts
from repro.core.repartition import RepartitionPlan, plan_repartition
from repro.core.scale_factor import optimal_scale_factor
from repro.store.lineage import LineageGraph
from repro.store.master import Master
from repro.store.store_client import StoreClient
from repro.store.under_store import UnderStore
from repro.store.worker import Worker

__all__ = ["RebalanceReport", "SPCacheSystem"]


@dataclass(frozen=True)
class RebalanceReport:
    """What one periodic re-balance round did."""

    alpha: float
    n_files: int
    n_repartitioned: int
    moved_bytes: float

    @property
    def repartitioned_fraction(self) -> float:
        return self.n_repartitioned / self.n_files if self.n_files else 0.0


class SPCacheSystem:
    """A running SP-Cache deployment over the byte-level store."""

    def __init__(
        self,
        cluster: ClusterSpec,
        worker_capacity: float = float("inf"),
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.cluster = cluster
        self._rng = make_rng(seed)
        self.master = Master(cluster.n_servers, seed=self._rng)
        self.workers = [
            Worker(i, capacity=worker_capacity)
            for i in range(cluster.n_servers)
        ]
        self.client = StoreClient(
            self.master,
            self.workers,
            under_store=UnderStore(),
            lineage=LineageGraph(),
            seed=self._rng,
        )
        #: Current scale factor; set by the first :meth:`rebalance`.
        self.alpha: float | None = None
        self.rebalances = 0

    # -- data plane ---------------------------------------------------------

    def write(self, file_id: int, data: bytes) -> None:
        """Write a new file.

        Per Sec. 6.1, new files land unsplit on one random server (cold
        files dominate); they get partitioned when a re-balance finds them
        hot — unless a scale factor is already configured and the caller
        supplied popularity hints via :meth:`rebalance`.
        """
        self.client.write(file_id, data, k=1, placement="random")

    def read(self, file_id: int) -> bytes:
        """Read a file (records the access at the master)."""
        return self.client.read(file_id)

    def checkpoint(self, file_id: int) -> None:
        self.client.checkpoint(file_id)

    # -- control plane ------------------------------------------------------

    def current_population(self) -> FilePopulation:
        """Popularity snapshot from the master's access-count window."""
        _, sizes, pops = self.master.popularity_snapshot()
        return FilePopulation(sizes=sizes, popularities=pops, total_rate=1.0)

    def partition_counts_now(self) -> np.ndarray:
        ids = sorted(meta.file_id for meta in self.master.files())
        return np.array(
            [len(self.master.meta(i).locations) for i in ids], dtype=np.int64
        )

    def rebalance(
        self, total_rate: float = 1.0, reset_window: bool = True
    ) -> RebalanceReport:
        """One periodic load-balancing round (the 12-hourly job).

        Re-estimates popularity, runs Algorithm 1 (sweep mode over the
        overhead-aware bound), plans Algorithm 2, and physically
        repartitions only the changed files through per-server
        repartitioners (the store moves real bytes).
        """
        if self.master.n_files == 0:
            raise RuntimeError("nothing to rebalance: no files written")
        pop = self.current_population().with_rate(total_rate)
        search = optimal_scale_factor(
            pop,
            self.cluster,
            goodput=GoodputModel(),
            client_cap=True,
            service_distribution="deterministic",
            mode="sweep",
            seed=self._rng,
        )
        self.alpha = search.alpha

        ids = sorted(meta.file_id for meta in self.master.files())
        old_ks = self.partition_counts_now()
        old_servers = [
            np.array(self.master.meta(i).worker_ids, dtype=np.int64)
            for i in ids
        ]
        plan: RepartitionPlan = plan_repartition(
            pop,
            self.cluster,
            old_ks,
            old_servers,
            alpha=self.alpha,
            seed=self._rng,
        )

        moved = 0.0
        for pos in np.nonzero(plan.changed)[0]:
            file_id = ids[pos]
            new_k = int(plan.new_ks[pos])
            meta = self.client.repartition(
                file_id, new_k, placement="least_loaded"
            )
            moved += self.master.meta(file_id).size
            assert len(meta.locations) == new_k
        if reset_window:
            self.master.reset_access_counts()
        self.rebalances += 1
        return RebalanceReport(
            alpha=self.alpha,
            n_files=len(ids),
            n_repartitioned=int(plan.changed.sum()),
            moved_bytes=moved,
        )

    # -- introspection --------------------------------------------------------

    def expected_k(self, file_id: int, total_rate: float = 1.0) -> int:
        """Partitions the file would get under the current scale factor."""
        if self.alpha is None:
            raise RuntimeError("no scale factor configured yet")
        pop = self.current_population().with_rate(total_rate)
        ids = sorted(meta.file_id for meta in self.master.files())
        ks = partition_counts(pop, self.alpha, n_servers=self.cluster.n_servers)
        return int(ks[ids.index(file_id)])

    def server_placed_bytes(self) -> np.ndarray:
        return self.master.placed_bytes.copy()
