"""Fig. 13 — mean and tail latency under skew, rates 6-22.

Setup (Sec. 7.3): 500 x 100 MB files, Zipf(1.05), natural stragglers,
40 % memory overhead for both baselines.  Paper result: SP-Cache improves
the mean by 29-50 % (40-70 %) and the tail by 22-55 % (33-63 %) over
EC-Cache (selective replication), with the advantage growing as the rate
rises.
"""

from __future__ import annotations

from repro.experiments.config import EC2_CLUSTER
from repro.experiments.skew_resilience import (
    compare_schemes,
    default_schemes,
    improvement_pct,
    sec73_population,
)
from repro.experiments.registry import experiment

__all__ = ["run_fig13"]

PAPER = {
    "mean_improvement_vs_ec": "29-50 %",
    "tail_improvement_vs_ec": "22-55 %",
    "mean_improvement_vs_rep": "40-70 %",
    "tail_improvement_vs_rep": "33-63 %",
}


@experiment(paper=PAPER, timeline=True)
def run_fig13(
    scale: float = 1.0,
    rates: tuple[float, ...] = (6, 10, 14, 18, 22),
    cluster=EC2_CLUSTER,
    decode_overhead: float = 0.2,
) -> list[dict]:
    rows = []
    for rate in rates:
        pop = sec73_population(rate)
        stats = compare_schemes(
            pop, cluster, default_schemes(decode_overhead), scale=scale
        )
        sp, ec, rep = (
            stats["sp-cache"],
            stats["ec-cache"],
            stats["selective-replication"],
        )
        rows.append(
            {
                "rate": rate,
                "sp_mean": sp["mean_s"],
                "ec_mean": ec["mean_s"],
                "rep_mean": rep["mean_s"],
                "sp_p95": sp["p95_s"],
                "ec_p95": ec["p95_s"],
                "rep_p95": rep["p95_s"],
                "mean_vs_ec_pct": improvement_pct(ec["mean_s"], sp["mean_s"]),
                "tail_vs_ec_pct": improvement_pct(ec["p95_s"], sp["p95_s"]),
                "mean_vs_rep_pct": improvement_pct(
                    rep["mean_s"], sp["mean_s"]
                ),
                "tail_vs_rep_pct": improvement_pct(rep["p95_s"], sp["p95_s"]),
            }
        )
    return rows
