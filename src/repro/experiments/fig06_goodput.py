"""Fig. 6 — normalized goodput versus partition count.

The paper measures goodput (useful bits over the wire) reading one file
through k parallel connections from a single server: it drops ~20 % at
k = 20 and ~40 % at k = 100 on 1 Gbps, and to 0.6 at k = 100 on 500 Mbps.
Our :class:`~repro.cluster.network.GoodputModel` is *calibrated* from that
figure, so this experiment is a calibration check plus a micro-simulation
confirming the model's effect on transfer time.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.network import GoodputModel
from repro.common import MB, Mbps, Gbps
from repro.experiments.registry import experiment

__all__ = ["run_fig06"]

PAPER = {
    "1gbps": {1: 1.0, 20: 0.8, 100: 0.62},
    "500mbps": {1: 1.0, 20: 0.75, 100: 0.6},
}


@experiment(paper=PAPER)
def run_fig06(ks: tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100)) -> list[dict]:
    model = GoodputModel()
    rows = []
    for k in ks:
        g1 = model.factor(k, Gbps)
        g5 = model.factor(k, 500 * Mbps)
        # Effective transfer time of a 40 MB file through k connections on
        # one server (all partitions co-located, as in the paper's setup).
        base = 40 * MB / Gbps
        rows.append(
            {
                "partitions": k,
                "goodput_1gbps": g1,
                "goodput_500mbps": g5,
                "transfer_s_40mb_1gbps": base / g1,
                "paper_1gbps": PAPER["1gbps"].get(k, ""),
                "paper_500mbps": PAPER["500mbps"].get(k, ""),
            }
        )
    assert np.all(np.diff([r["goodput_1gbps"] for r in rows]) <= 0)
    return rows
