"""Fig. 2 + Table 1 — the motivation: hot spots erase caching's benefit.

Setup (Sec. 2.2): 30 cache servers, 50 files of 40 MB, Zipf(1.1)
popularity, aggregate rates 5-10 req/s.  Two systems: stock caching
(single in-memory copy per file, 1 Gbps NICs) and no caching (every read
served from spinning disk).

Paper shape: at rate 5 caching wins ~5x; as the rate grows the hot-spot
servers congest and the two curves converge (by rate >= 9 caching is
"irrelevant").  Table 1: CV stays above 1 in both systems.
"""

from __future__ import annotations

from repro.cluster import simulate_reads
from repro.common import MB, ClusterSpec
from repro.experiments.config import DEFAULTS, EC2_CLUSTER, sim_config
from repro.policies import SingleCopyPolicy
from repro.workloads import paper_fileset, poisson_trace
from repro.experiments.registry import experiment

__all__ = ["run_fig02"]

#: Effective sequential throughput of the disk tier under concurrent
#: readers.  60 MB/s puts the hottest file's disk server near saturation at
#: rate 5 (its offered load is ~50 MB/s under Zipf(1.1)), reproducing the
#: paper's regime where the uncached baseline is usable at light load but
#: collapses as the rate grows.
DISK_BANDWIDTH = 60 * MB

PAPER = {
    # (rate) -> (cached mean s, uncached mean s), eyeballed from Fig. 2.
    5: (2.0, 10.5),
    10: (20.0, 23.0),
    "cv_cached": [1.29, 1.41, 1.59, 2.08, 1.83, 1.83],
    "cv_uncached": [1.67, 1.70, 1.64, 1.74, 1.79, 1.78],
}


@experiment(paper=PAPER)
def run_fig02(scale: float = 1.0) -> list[dict]:
    rows = []
    disk_cluster = ClusterSpec(
        n_servers=EC2_CLUSTER.n_servers,
        bandwidth=DISK_BANDWIDTH,
        client_bandwidth=DISK_BANDWIDTH,
    )
    for rate in (5, 6, 7, 8, 9, 10):
        pop = paper_fileset(50, size_mb=40, zipf_exponent=1.1, total_rate=rate)
        trace = poisson_trace(
            pop, n_requests=DEFAULTS.requests(scale), seed=DEFAULTS.seed_trace
        )
        cached = simulate_reads(
            trace,
            SingleCopyPolicy(pop, EC2_CLUSTER, seed=DEFAULTS.seed_policy),
            EC2_CLUSTER,
            sim_config(),
        ).summary()
        uncached = simulate_reads(
            trace,
            SingleCopyPolicy(pop, disk_cluster, seed=DEFAULTS.seed_policy),
            disk_cluster,
            sim_config(),
        ).summary()
        rows.append(
            {
                "rate": rate,
                "cached_mean_s": cached.mean,
                "uncached_mean_s": uncached.mean,
                "speedup": uncached.mean / cached.mean,
                "cached_cv": cached.cv,
                "uncached_cv": uncached.cv,
            }
        )
    return rows
