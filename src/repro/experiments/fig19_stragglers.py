"""Fig. 19 — resilience to *intensive* stragglers.

Setup (Sec. 7.5): each cluster node becomes a straggler with probability
0.05; every read it serves is delayed by a Bing-profiled factor.  Paper
result: SP-Cache still cuts the mean by up to 40 % (53 %) versus EC-Cache
(selective replication); its *tail* can trail the redundant baselines at
light load (redundancy absorbs stragglers) but wins by up to 41 % (55 %)
once load-imbalance dominates.
"""

from __future__ import annotations

from repro.cluster import StragglerInjector
from repro.experiments.config import EC2_CLUSTER
from repro.experiments.skew_resilience import (
    compare_schemes,
    default_schemes,
    improvement_pct,
    sec73_population,
)
from repro.experiments.registry import experiment

__all__ = ["run_fig19"]

PAPER = {
    "mean_improvement_vs_ec": "up to 40 %",
    "mean_improvement_vs_rep": "up to 53 %",
    "tail_improvement_vs_ec": "up to 41 % at high rate; may trail at low rate",
    "tail_improvement_vs_rep": "up to 55 %",
}


@experiment(paper=PAPER, timeline=True)
def run_fig19(
    scale: float = 1.0, rates: tuple[float, ...] = (6, 10, 14, 18, 22)
) -> list[dict]:
    rows = []
    for rate in rates:
        stats = compare_schemes(
            sec73_population(rate),
            EC2_CLUSTER,
            default_schemes(),
            stragglers=StragglerInjector.intensive(),
            scale=scale,
        )
        sp, ec, rep = (
            stats["sp-cache"],
            stats["ec-cache"],
            stats["selective-replication"],
        )
        rows.append(
            {
                "rate": rate,
                "sp_mean": sp["mean_s"],
                "ec_mean": ec["mean_s"],
                "rep_mean": rep["mean_s"],
                "sp_p95": sp["p95_s"],
                "ec_p95": ec["p95_s"],
                "rep_p95": rep["p95_s"],
                "mean_vs_ec_pct": improvement_pct(ec["mean_s"], sp["mean_s"]),
                "tail_vs_ec_pct": improvement_pct(ec["p95_s"], sp["p95_s"]),
            }
        )
    return rows
