"""Fig. 16 rerun — Algorithm 2 driven by *sketched* popularity.

The paper (and :mod:`repro.experiments.fig16_repartition`) hands the
repartitioner the oracle popularity vector of the shifted workload.  A
deployed SP-Master only sees the request stream, so this variant feeds
the shifted traffic through a live simulation with streaming popularity
observation (:mod:`repro.obs.popularity`) enabled, then plans Algorithm 2
twice — once from the oracle vector and once from the sketch's estimate —
and measures the accuracy gap:

* fidelity of the estimate itself: top-K precision against the true
  hottest files and the online Zipf-exponent estimate vs the ground
  truth fit (acceptance: precision >= 0.9, alpha within 10 %);
* quality of the resulting layouts: the imbalance factor eta (Eq. 15)
  of the oracle-driven and sketch-driven plans, both evaluated under the
  *true* shifted loads, against the stale pre-shift layout;
* responsiveness: a two-phase stream (pre-shift, then shifted) through
  one monitor must raise at least one ``drift`` alert — the trigger a
  live system would repartition on.

Runs on the ``fifo`` discipline: the monitor observes at plan time, so
the discipline only affects queueing, not what the sketch sees, and the
heap-free engine keeps the 30k-request stream cheap.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import SimulationConfig, imbalance_factor, simulate_reads
from repro.core import plan_repartition
from repro.core.placement import placement_server_loads
from repro.core.repartition import repartition_time_parallel
from repro.experiments.config import EC2_CLUSTER
from repro.experiments.registry import experiment
from repro.obs.popularity import (
    PopularityConfig,
    PopularityMonitor,
    publish_popularity,
)
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace, shuffled_popularity
from repro.workloads.popularity import zipf_exponent_fit

__all__ = ["run_fig16_sketch"]

PAPER = {
    "topk_precision": ">= 0.9 (acceptance gate)",
    "alpha_rel_err": "<= 0.10 (acceptance gate)",
    "eta_gap": "sketch-driven plan within a few % of oracle",
    "drift_alerts": ">= 1 across the shift",
}


def _drift_detection(
    pop, shifted, n_requests: int, seed: int
) -> tuple[int, int]:
    """(drift, hotspot) alert counts over a pre-shift -> shifted stream.

    Feeds one monitor two phases of the same length, drawn from the
    pre-shift and post-shift popularity vectors — the shuffle that
    Sec. 7.4 calls "a more drastic shift than production traces", so the
    windowed L1/rank-churn detector must notice it.
    """
    rng = np.random.default_rng(seed)
    n_files = pop.n_files
    monitor = PopularityMonitor(
        PopularityConfig(window_requests=1024),
        scheme="drift-demo",
        engine="stream",
    )
    for vec in (pop.popularities, shifted.popularities):
        for fid in rng.choice(n_files, size=n_requests // 2, p=vec):
            monitor.observe(int(fid))
    section = monitor.finalize()
    # Land the alert-bearing section in the run manifest alongside the
    # simulation's, so `repro top` shows the drift the row counts.
    publish_popularity(section)
    drift = sum(1 for a in section["alerts"] if a["kind"] == "drift")
    hot = sum(1 for a in section["alerts"] if a["kind"] == "hotspot")
    return drift, hot


@experiment(paper=PAPER)
def run_fig16_sketch(
    scale: float = 1.0,
    n_files: int = 300,
    n_requests: int = 30000,
    top_k: int = 16,
    seed: int = 0,
) -> list[dict]:
    n_req = max(int(n_requests * scale), 2000)
    pop = paper_fileset(
        n_files, size_mb=50, zipf_exponent=1.05, total_rate=10.0
    )
    policy = SPCachePolicy(pop, EC2_CLUSTER, straggler_aware=True, seed=seed)
    old_ks = policy.partition_counts()
    old_servers = policy.servers_of
    shifted = pop.with_popularities(
        shuffled_popularity(pop.popularities, seed=seed)
    )

    # The stale layout serves the shifted traffic; the monitor watches.
    trace = poisson_trace(shifted, n_requests=n_req, seed=seed + 1)
    config = SimulationConfig(
        discipline="fifo",
        jitter="deterministic",
        seed=seed + 2,
        popularity=PopularityConfig(top_k=top_k, estimate_ids=n_files),
    )
    result = simulate_reads(trace, policy, EC2_CLUSTER, config)
    section = result.popularity

    est = np.asarray(section["estimated_popularity"], dtype=np.float64)
    est_pop = shifted.with_popularities(est)
    plans = {
        "oracle": plan_repartition(
            shifted, EC2_CLUSTER, old_ks, old_servers,
            alpha=policy.alpha, seed=seed,
        ),
        "sketch": plan_repartition(
            est_pop, EC2_CLUSTER, old_ks, old_servers,
            alpha=policy.alpha, seed=seed,
        ),
    }

    # Every layout is judged under the TRUE shifted loads — the sketch
    # only gets to influence the plan, never the yardstick.
    n_servers = EC2_CLUSTER.n_servers

    def eta_of(servers_of) -> float:
        return imbalance_factor(
            placement_server_loads(servers_of, shifted.loads, n_servers)
        )

    eta_stale = eta_of(old_servers)
    eta = {
        name: eta_of(plan.new_servers_of) for name, plan in plans.items()
    }

    true_top = set(
        np.argsort(-shifted.popularities, kind="stable")[:top_k].tolist()
    )
    est_top = {entry["file_id"] for entry in section["top"][:top_k]}
    precision = len(true_top & est_top) / top_k
    alpha_true = zipf_exponent_fit(shifted.popularities)
    alpha_est = section["alpha_est"]
    alpha_rel_err = (
        abs(alpha_est - alpha_true) / alpha_true
        if alpha_est is not None
        else float("inf")
    )
    drift_alerts, hotspot_alerts = _drift_detection(
        pop, shifted, n_req, seed + 3
    )

    return [
        {
            "n_files": n_files,
            "requests": n_req,
            "topk_precision": float(precision),
            "alpha_true": float(alpha_true),
            "alpha_est": float(alpha_est) if alpha_est is not None else None,
            "alpha_rel_err": float(alpha_rel_err),
            "eta_stale": float(eta_stale),
            "eta_oracle": float(eta["oracle"]),
            "eta_sketch": float(eta["sketch"]),
            "eta_gap": float(eta["sketch"] - eta["oracle"]),
            "changed_fraction_oracle": float(plans["oracle"].changed_fraction),
            "changed_fraction_sketch": float(plans["sketch"].changed_fraction),
            "repartition_s_sketch": float(
                repartition_time_parallel(
                    plans["sketch"], shifted, EC2_CLUSTER, old_ks
                )
            ),
            "drift_alerts": int(drift_alerts),
            "hotspot_alerts": int(hotspot_alerts),
        }
    ]
