"""Fig. 20 — cache hit ratio under a throttled cache budget.

Setup (Sec. 7.6): the Sec. 7.3 workload with the cluster-wide cache budget
throttled below the dataset size; LRU replacement at file granularity; a
file's cached footprint includes its scheme's redundancy.  Paper result:
redundancy-free SP-Cache keeps the most files resident and wins the hit
ratio at every budget; selective replication is worst (each hot replica
evicts a not-so-hot file).
"""

from __future__ import annotations

from repro.cluster import simulate_reads
from repro.experiments.config import DEFAULTS, EC2_CLUSTER, sim_config
from repro.experiments.skew_resilience import default_schemes, sec73_population
from repro.workloads import poisson_trace
from repro.experiments.registry import experiment

__all__ = ["run_fig20"]

PAPER = {"ordering": "sp-cache > ec-cache > selective-replication"}


@experiment(paper=PAPER)
def run_fig20(
    scale: float = 1.0,
    budget_fractions: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2),
    rate: float = 10.0,
) -> list[dict]:
    pop = sec73_population(rate)
    trace = poisson_trace(
        pop, n_requests=DEFAULTS.requests(scale), seed=DEFAULTS.seed_trace
    )
    rows = []
    for frac in budget_fractions:
        budget = frac * pop.total_bytes
        row = {"budget_fraction": frac}
        for name, factory in default_schemes().items():
            policy = factory(pop, EC2_CLUSTER)
            result = simulate_reads(
                trace,
                policy,
                EC2_CLUSTER,
                sim_config(cache_budget=budget),
            )
            row[name.replace("-", "_") + "_hit"] = result.hit_ratio
        rows.append(row)
    return rows
