"""Shared experimental defaults (Sec. 7.1's methodology).

30 cache servers with 1 Gbps NICs and 10 GB of cache each; clients submit
Poisson reads; skewed popularity is Zipf(1.05) unless an experiment says
otherwise.  ``scale`` shrinks the request count of every simulation
uniformly so the same runners serve quick CI checks and full benchmark
runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import SimulationConfig, StragglerInjector
from repro.common import GB, ClusterSpec, Gbps

__all__ = ["EC2_CLUSTER", "ExperimentDefaults", "defaults_dict", "sim_config"]

#: The paper's EC2 deployment: 30 r3.2xlarge cache servers, 1 Gbps.
EC2_CLUSTER = ClusterSpec(n_servers=30, bandwidth=Gbps, capacity=10 * GB)

#: Fig. 15's compute-optimized variant: c4.4xlarge, 1.4 Gbps measured.
C4_CLUSTER = ClusterSpec(n_servers=30, bandwidth=1.4 * Gbps, capacity=10 * GB)


@dataclass(frozen=True)
class ExperimentDefaults:
    """Request-volume and seed defaults for simulation-backed experiments."""

    n_requests: int = 4000
    seed_trace: int = 11
    seed_policy: int = 5
    seed_sim: int = 23

    def requests(self, scale: float = 1.0) -> int:
        return max(int(self.n_requests * scale), 200)


DEFAULTS = ExperimentDefaults()


def defaults_dict() -> dict[str, int]:
    """The shared defaults as a JSON-ready dict (run-manifest ``config``)."""
    return {
        "n_requests": DEFAULTS.n_requests,
        "seed_trace": DEFAULTS.seed_trace,
        "seed_policy": DEFAULTS.seed_policy,
        "seed_sim": DEFAULTS.seed_sim,
    }


def sim_config(
    stragglers: StragglerInjector | None = None,
    cache_budget: float | None = None,
    seed: int = DEFAULTS.seed_sim,
    discipline: str = "ps",
) -> SimulationConfig:
    """The EC2-reproduction simulation settings.

    Processor-sharing servers, deterministic transfers (real byte streams),
    natural stragglers by default — see DESIGN.md's substitution notes.
    ``discipline`` accepts any engine-registry spec (``"fifo"``, ``"ps"``,
    ``"limited(c)"``) for what-if runs under other server models.
    """
    return SimulationConfig(
        discipline=discipline,
        jitter="deterministic",
        stragglers=stragglers
        if stragglers is not None
        else StragglerInjector.natural(),
        cache_budget=cache_budget,
        seed=seed,
    )
