"""Seed-keyed memo cache for shared workload builds.

The scheme-comparison experiments (figs. 12-15, 19) and the trace-driven
run (fig. 21) all rebuild the same inputs — the Sec. 7.3 500-file Zipf
population at a handful of rates, the Poisson traces over them, the
Yahoo!-sized population — once per figure.  This module memoizes those
builds process-wide so a full ``run_all`` pass constructs each input
exactly once; everything is keyed on the *complete* argument tuple
(sizes, rates, seeds), so two builds share an entry only when they are
bit-for-bit the same computation.

Cache traffic is observable: every lookup increments a
``workload_cache.hit`` or ``workload_cache.miss`` counter (labelled by
build kind) on the active metrics registry, so per-experiment manifests
record how much recomputation the cache saved.  Because hit/miss splits
depend on execution order — a serial pass warms the cache for later
figures, a ``--jobs N`` pass gives each worker process a cold private
cache — ``repro report --diff`` deliberately ignores
``workload_cache.*`` keys (see :mod:`repro.obs.report`).

Cached values are returned by reference; workload objects
(:class:`~repro.common.FilePopulation`, arrival traces) are treated as
immutable by every consumer, and the golden-row tests assert that
repeated cached runs reproduce cold-run results exactly.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Callable, TypeVar

import numpy as np

from repro.obs.metrics import get_registry

__all__ = [
    "cache_stats",
    "cached_build",
    "cached_materialize",
    "clear_cache",
    "memoized",
    "population_fingerprint",
    "shared_stream",
]

T = TypeVar("T")

_CACHE: dict[tuple, Any] = {}
_LOCK = threading.Lock()


def cached_build(kind: str, key: tuple, builder: Callable[[], T]) -> T:
    """Return ``builder()``, memoized under ``(kind, key)``.

    ``key`` must be hashable and must capture every input the builder
    depends on (including seeds).  The hit/miss counter lands on the
    *current* metrics registry, so lookups made inside
    ``run_experiment`` show up in that experiment's manifest.
    """
    full_key = (kind, key)
    with _LOCK:
        hit = full_key in _CACHE
    registry = get_registry()
    registry.counter(
        "workload_cache.hit" if hit else "workload_cache.miss", kind=kind
    ).inc()
    if not hit:
        value = builder()
        with _LOCK:
            # Two racing builders compute identical (seeded) values; keep
            # the first so later callers share one object.
            _CACHE.setdefault(full_key, value)
    with _LOCK:
        return _CACHE[full_key]


def memoized(kind: str) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator: memoize a builder on its full ``(args, kwargs)`` tuple."""

    def decorate(func: Callable[..., T]) -> Callable[..., T]:
        def wrapper(*args: Any, **kwargs: Any) -> T:
            key = (args, tuple(sorted(kwargs.items())))
            return cached_build(kind, key, lambda: func(*args, **kwargs))

        wrapper.__name__ = func.__name__
        wrapper.__doc__ = func.__doc__
        wrapper.__wrapped__ = func  # type: ignore[attr-defined]
        return wrapper

    return decorate


def population_fingerprint(population: Any) -> str:
    """A stable content hash of a file population.

    Lets derived builds (traces) key on the population they were drawn
    from without requiring the population object itself to be hashable.
    Hashing ~500 floats costs microseconds — noise next to trace
    generation.
    """
    digest = hashlib.sha1()
    digest.update(np.ascontiguousarray(population.sizes).tobytes())
    digest.update(np.ascontiguousarray(population.popularities).tobytes())
    digest.update(repr(float(population.total_rate)).encode())
    return digest.hexdigest()


def shared_stream(stream: Any) -> Any:
    """Return the canonical cached instance of a workload stream.

    Streams are replayable by construction — ``chunks()`` builds fresh
    generators from the stored seed on every pass — so two streams with
    the same :meth:`fingerprint` are interchangeable.  This dedups them
    to one shared object (keyed on the fingerprint alone, *not* on
    identity) without forcing a single chunk, so a ``run_all`` pass that
    builds the same stream spec for several figures registers cache hits
    while the arrival draws stay lazy.
    """
    from repro.workloads.streams import is_stream

    if not is_stream(stream):
        raise TypeError(
            f"shared_stream needs a WorkloadStream, "
            f"got {type(stream).__name__}"
        )
    return cached_build("stream", (stream.fingerprint(),), lambda: stream)


def cached_materialize(stream: Any) -> Any:
    """Materialize a stream to an :class:`ArrivalTrace`, at most once.

    Keyed on the stream's content fingerprint, so any equivalent stream
    object replays the already-forced trace instead of regenerating it.
    Callers that only iterate chunks never pay this cost; callers that
    need random access (the heap disciplines, report diffing) share one
    forced copy per distinct workload.
    """
    from repro.workloads.streams import is_stream

    if not is_stream(stream):
        raise TypeError(
            f"cached_materialize needs a WorkloadStream, "
            f"got {type(stream).__name__}"
        )
    return cached_build(
        "stream_materialize", (stream.fingerprint(),), stream.materialize
    )


def clear_cache() -> None:
    """Drop every cached build (test isolation)."""
    with _LOCK:
        _CACHE.clear()


def cache_stats() -> dict[str, int]:
    """Entry counts by build kind (diagnostics and tests)."""
    with _LOCK:
        stats: dict[str, int] = {}
        for kind, _ in _CACHE:
            stats[kind] = stats.get(kind, 0) + 1
        return stats
