"""fig_churn — elastic membership: ring vs hash-mod vs epoch-aware SP-Cache.

The paper fixes its cluster at 30 servers for every experiment; this one
asks what happens on the autoscaling path it leaves open (ROADMAP item
2).  A diurnal :class:`~repro.cluster.topology.ChurnSchedule` adds and
then drains servers in steps, and three placement strategies ride the
same epoch sequence:

* **hash-mod** — ``server = hash(key) % N`` placement recomputed per
  epoch: nearly every file moves on every membership change;
* **ring** — consistent hashing with virtual nodes
  (:mod:`repro.core.placement.hash_ring`): ~``1/N`` of keys move per
  single-server change, at slightly lumpier balance;
* **sp-cache** — the epoch-aware Algorithm 2 extension
  (:func:`~repro.core.repartition.plan_epoch_repartition`): only files
  forced by a departed server or re-scaled by the new optimum move,
  placed greedily least-loaded.

Per epoch and strategy the table reports bytes moved, the fraction of
single-partition keys whose owner changed, the load-imbalance factor
:math:`\\eta` (Eq. 15), the disruption window (slowest server's transfer
time for the move), and steady-state vs disruption-inflated p99 read
latency from a per-epoch fork-join simulation.  Each strategy publishes
one membership section (per-epoch server sets + bytes moved) into the
schema-v7 manifest, and the topology's ``membership``/``epoch`` events
land in the trace for ``repro dash`` and replay.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import (
    ChurnSchedule,
    ClusterTopology,
    ReadOp,
    SimulationConfig,
    imbalance_factor,
    simulate_reads,
)
from repro.core.placement import (
    hash_mod_assignment,
    place_hash_mod,
    place_on_ring,
    placement_server_loads,
    relocated_fraction,
    ring_assignment,
)
from repro.core.repartition import plan_epoch_repartition
from repro.experiments.config import DEFAULTS
from repro.experiments.registry import experiment
from repro.obs.membership import publish_membership
from repro.obs.tracing import get_tracer
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace

__all__ = ["run_fig_churn"]

PAPER = {
    "note": "no paper counterpart: the paper fixes N=30 for every run",
    "ring_moved_keys": "~1/N per single-server change",
    "hash_mod_moved_keys": "~(N-1)/N per single-server change",
    "sp_cache_moves": "only membership-forced and re-scaled files",
}

#: Probe keyspace for the owner-relocation metric (single-partition view).
_N_PROBE_KEYS = 512


class _EpochLayoutPolicy:
    """A frozen per-epoch layout exposed through the ReadPlanner protocol.

    ``servers_of`` holds *dense* indices into the epoch's spec (the
    simulator's server axis); the stable-id layouts the strategies
    produce are mapped through
    :meth:`~repro.cluster.topology.EpochView.to_dense` before building
    one of these.  Both the scalar engine path and the vectorized
    :class:`~repro.cluster.engine.batch.BatchPlanner` read the
    ``servers_of``/``piece_sizes`` attributes directly.
    """

    def __init__(
        self, name: str, servers_of: list[np.ndarray], sizes: np.ndarray
    ) -> None:
        self.name = name
        self.servers_of = servers_of
        self.piece_sizes = [
            np.full(s.size, size / s.size)
            for s, size in zip(servers_of, sizes)
        ]

    def plan_read(self, file_id: int, rng: np.random.Generator) -> ReadOp:
        del rng
        return ReadOp(
            server_ids=self.servers_of[file_id],
            sizes=self.piece_sizes[file_id],
        )

    def footprint(self, file_id: int) -> float:
        return float(self.piece_sizes[file_id].sum())


def _baseline_move(
    sizes: np.ndarray,
    old_servers: list[np.ndarray],
    new_servers: list[np.ndarray],
    epoch,
    id_space: int,
) -> tuple[float, float]:
    """(moved_bytes, disruption_window_s) for a placement-only strategy.

    Each partition landing on a server that did not already hold a piece
    of the file is pulled over that server's NIC; the window is the
    slowest puller (every server fetches its own arrivals in parallel —
    the same concurrency model as the parallel repartition scheme).
    """
    incoming = np.zeros(id_space)
    for size, old, new in zip(sizes, old_servers, new_servers):
        fresh = np.setdiff1d(new, old, assume_unique=True)
        for sid in fresh:
            incoming[sid] += size / new.size
    bandwidths = np.full(id_space, np.inf)
    bandwidths[list(epoch.server_ids)] = epoch.spec.bandwidths
    window = float((incoming / bandwidths).max()) if id_space else 0.0
    return float(incoming.sum()), window


def _epoch_p99s(
    pop,
    layout_stable: list[np.ndarray],
    epoch,
    moved: np.ndarray,
    window_s: float,
    *,
    scheme: str,
    n_requests: int,
    seed: int,
) -> tuple[float, float]:
    """(steady p99, disruption-inflated p99) for one epoch's layout.

    The steady p99 comes straight from a fork-join simulation of the
    epoch.  The disruption p99 additionally charges every request that
    hits a *moved* file while the move is still in flight (arrival
    before ``window_s``) the remainder of the window — the read blocks
    until its partitions finish landing.
    """
    policy = _EpochLayoutPolicy(
        f"{scheme}@e{epoch.index}",
        [epoch.to_dense(s) for s in layout_stable],
        pop.sizes,
    )
    trace = poisson_trace(pop, n_requests=n_requests, seed=seed)
    result = simulate_reads(
        trace,
        policy,
        epoch.spec,
        SimulationConfig(jitter="deterministic", seed=DEFAULTS.seed_sim),
    )
    skip = int(result.latencies.size * result.config.warmup_fraction)
    steady = result.latencies[skip:]
    extra = np.where(
        moved[result.file_ids] & (result.arrival_times < window_s),
        window_s - result.arrival_times,
        0.0,
    )
    disrupted = (result.latencies + extra)[skip:]
    return (
        float(np.percentile(steady, 99)),
        float(np.percentile(disrupted, 99)),
    )


@experiment(paper=PAPER, timeline=True)
def run_fig_churn(
    scale: float = 1.0,
    n_servers: int = 12,
    amplitude: int = 4,
    steps: int = 2,
    n_files: int = 60,
) -> list[dict]:
    pop = paper_fileset(n_files, size_mb=50, zipf_exponent=1.05, total_rate=10.0)
    # Diurnal swell above the base size, then a same-timestamp
    # replacement of an *original* server (both ops fold into one
    # epoch): the cluster never dips below ``n_servers``, but every
    # strategy has to cope with losing a server that holds data.
    schedule = ChurnSchedule.diurnal(
        t_peak=60.0, t_trough=240.0, amplitude=amplitude, steps=steps
    ).remove_ids(300.0, [2]).add(300.0, 1)
    topology = ClusterTopology(n_servers, schedule)
    topology.emit_events(get_tracer())
    id_space = topology.id_space
    n_requests = max(int(300 * scale), 60)

    # Epoch-0 layout shared by every strategy: SP-Cache's selective
    # partition counts on the initial membership (epoch 0's dense
    # indices coincide with stable ids by construction).
    policy = SPCachePolicy(pop, topology, seed=DEFAULTS.seed_policy)
    ks0 = policy.partition_counts()
    probe_keys = np.arange(_N_PROBE_KEYS)

    rows: list[dict] = []
    sections: dict[str, dict] = {}
    for scheme in ("hash-mod", "ring", "sp-cache"):
        section = topology.membership_section(scheme=scheme)
        sections[scheme] = section
        if scheme == "sp-cache":
            layout = [np.sort(np.asarray(s)) for s in policy.servers_of]
            ks = ks0.copy()
        else:
            ks = np.minimum(ks0, topology.initial.n_servers)
            placer = place_hash_mod if scheme == "hash-mod" else place_on_ring
            layout = placer(ks, topology.initial.server_ids)
        assignment = (
            hash_mod_assignment(probe_keys, topology.initial.server_ids)
            if scheme == "hash-mod"
            else ring_assignment(probe_keys, topology.initial.server_ids)
            if scheme == "ring"
            else None
        )
        for epoch in topology.epochs:
            if epoch.index == 0:
                moved_bytes, window, key_frac = 0.0, 0.0, 0.0
                moved = np.zeros(pop.n_files, dtype=bool)
            elif scheme == "sp-cache":
                plan = plan_epoch_repartition(
                    pop,
                    epoch,
                    ks,
                    layout,
                    alpha=policy.alpha,
                    max_partitions=n_servers,
                    id_space=id_space,
                    seed=DEFAULTS.seed_policy,
                )
                moved_bytes = plan.moved_bytes
                window = plan.disruption_window_s
                moved = plan.changed
                key_frac = plan.changed_fraction
                ks, layout = plan.new_ks, plan.new_servers_of
            else:
                new_ks = np.minimum(ks0, epoch.n_servers)
                new_layout = (
                    place_hash_mod(new_ks, epoch.server_ids)
                    if scheme == "hash-mod"
                    else place_on_ring(new_ks, epoch.server_ids)
                )
                moved_bytes, window = _baseline_move(
                    pop.sizes, layout, new_layout, epoch, id_space
                )
                moved = np.fromiter(
                    (
                        np.setdiff1d(n, o, assume_unique=True).size > 0
                        for o, n in zip(layout, new_layout)
                    ),
                    dtype=bool,
                    count=pop.n_files,
                )
                new_assignment = (
                    hash_mod_assignment(probe_keys, epoch.server_ids)
                    if scheme == "hash-mod"
                    else ring_assignment(probe_keys, epoch.server_ids)
                )
                key_frac = relocated_fraction(assignment, new_assignment)
                assignment = new_assignment
                ks, layout = new_ks, new_layout
            loads = placement_server_loads(
                [epoch.to_dense(s) for s in layout],
                pop.loads,
                epoch.n_servers,
            )
            eta = imbalance_factor(loads)
            p99_steady, p99_disrupted = _epoch_p99s(
                pop,
                layout,
                epoch,
                moved,
                window,
                scheme=scheme,
                n_requests=n_requests,
                seed=DEFAULTS.seed_trace + epoch.index,
            )
            section["epochs"][epoch.index].update(
                moved_bytes=moved_bytes, disruption_window_s=window
            )
            rows.append(
                {
                    "strategy": scheme,
                    "epoch": epoch.index,
                    "n_servers": epoch.n_servers,
                    "added": len(epoch.added),
                    "removed": len(epoch.removed),
                    "moved_mb": moved_bytes / 2**20,
                    "moved_key_frac": key_frac,
                    "eta": eta,
                    "disruption_s": window,
                    "p99_steady_s": p99_steady,
                    "p99_disrupted_s": p99_disrupted,
                }
            )
    for scheme in ("hash-mod", "ring", "sp-cache"):
        publish_membership(sections[scheme])
    return rows
