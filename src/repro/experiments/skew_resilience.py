"""Shared machinery for the scheme-comparison experiments (Figs. 12-15, 19).

All of them run the same loop: build a policy per scheme on the Sec. 7.3
workload (500 files x 100 MB, Zipf(1.05)), push a Poisson trace through the
simulator, and compare mean/tail latency and the load-imbalance factor.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cluster import StragglerInjector, imbalance_factor, simulate_reads
from repro.common import ClusterSpec, FilePopulation
from repro.experiments.config import DEFAULTS, sim_config
from repro.experiments.workload_cache import (
    cached_build,
    population_fingerprint,
)
from repro.policies import (
    CachePolicy,
    ECCachePolicy,
    SelectiveReplicationPolicy,
    SPCachePolicy,
)
from repro.workloads import paper_fileset, poisson_trace

__all__ = [
    "default_schemes",
    "sec73_population",
    "compare_schemes",
    "improvement_pct",
]

PolicyFactory = Callable[[FilePopulation, ClusterSpec], CachePolicy]


def sec73_population(rate: float, n_files: int = 500) -> FilePopulation:
    """The Sec. 7.3 workload: 500 x 100 MB files, Zipf(1.05).

    Memoized per ``(rate, n_files)`` — figs. 12-15 and 19 all draw from
    this population, so a full pass builds each rate point once.
    """
    return cached_build(
        "sec73_population",
        (float(rate), int(n_files)),
        lambda: paper_fileset(
            n_files, size_mb=100, zipf_exponent=1.05, total_rate=rate
        ),
    )


def default_schemes(
    decode_overhead: float = 0.2,
) -> dict[str, PolicyFactory]:
    """SP-Cache vs the two redundant-caching baselines, paper settings."""
    return {
        "sp-cache": lambda pop, cl: SPCachePolicy(
            pop, cl, seed=DEFAULTS.seed_policy
        ),
        "ec-cache": lambda pop, cl: ECCachePolicy(
            pop,
            cl,
            k=10,
            n=14,
            decode_overhead=decode_overhead,
            seed=DEFAULTS.seed_policy,
        ),
        "selective-replication": lambda pop, cl: SelectiveReplicationPolicy(
            pop, cl, top_fraction=0.10, replicas=4, seed=DEFAULTS.seed_policy
        ),
    }


def compare_schemes(
    population: FilePopulation,
    cluster: ClusterSpec,
    schemes: dict[str, PolicyFactory],
    stragglers: StragglerInjector | None = None,
    scale: float = 1.0,
) -> dict[str, dict]:
    """Run every scheme on one trace; returns per-scheme stat dicts."""
    n_requests = DEFAULTS.requests(scale)
    trace = cached_build(
        "poisson_trace",
        (population_fingerprint(population), n_requests, DEFAULTS.seed_trace),
        lambda: poisson_trace(
            population, n_requests=n_requests, seed=DEFAULTS.seed_trace
        ),
    )
    out: dict[str, dict] = {}
    for name, factory in schemes.items():
        policy = factory(population, cluster)
        result = simulate_reads(
            trace, policy, cluster, sim_config(stragglers=stragglers)
        )
        summary = result.summary()
        out[name] = {
            "mean_s": summary.mean,
            "p95_s": summary.p95,
            "cv": summary.cv,
            "eta": imbalance_factor(result.server_bytes),
            "memory_overhead_pct": policy.memory_overhead() * 100,
            "server_bytes": result.server_bytes,
        }
    return out


def improvement_pct(baseline: float, sp: float) -> float:
    """Eq. (14): positive means SP-Cache is faster."""
    return (baseline - sp) / baseline * 100.0


def load_distribution_rows(server_bytes: np.ndarray) -> dict[str, float]:
    """Summary stats of a per-server load vector (Figs. 12/18)."""
    loads = np.asarray(server_bytes, dtype=np.float64)
    return {
        "min": float(loads.min()),
        "p50": float(np.median(loads)),
        "max": float(loads.max()),
        "eta": imbalance_factor(loads),
    }
