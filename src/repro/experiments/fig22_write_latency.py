"""Fig. 22 — write latency versus file size for the four schemes.

Setup (Sec. 7.8): single files of various sizes written to the cluster;
SP-Cache splits on write per the provided popularity (sequential write for
fairness); EC-Cache encodes then ships n/k times the bytes; selective
replication ships one copy per replica; 4 MB fixed chunking ships many
small connections.

Paper result: SP-Cache is fastest — on average 1.77x faster than EC-Cache,
3.71x faster than selective replication, and 13 % faster than 4 MB
chunking (whose connection count bites as files grow).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.client import write_latency
from repro.cluster.network import GoodputModel
from repro.common import MB, FilePopulation
from repro.experiments.config import DEFAULTS, EC2_CLUSTER
from repro.policies import (
    ECCachePolicy,
    FixedChunkingPolicy,
    SelectiveReplicationPolicy,
    SPCachePolicy,
)
from repro.workloads import zipf_popularity
from repro.experiments.registry import experiment

__all__ = ["run_fig22"]

PAPER = {
    "vs_ec": "1.77x faster on average",
    "vs_rep": "3.71x faster",
    "vs_chunk4mb": "13 % faster on average",
}


@experiment(paper=PAPER)
def run_fig22(
    sizes_mb: tuple[float, ...] = (20, 50, 100, 200, 400),
) -> list[dict]:
    goodput = GoodputModel()
    client_bw = EC2_CLUSTER.effective_client_bandwidth
    rows = []
    speedups: dict[str, list[float]] = {"ec": [], "rep": [], "chunk": []}
    for size_mb in sizes_mb:
        # A small population of hot same-size files: the written file is
        # popular, so SP-Cache splits it and replication copies it 4x.
        pop = FilePopulation(
            sizes=np.full(10, size_mb * MB),
            popularities=zipf_popularity(10, 1.05),
            total_rate=10.0,
        )
        file_id = 0  # the hottest file
        # Fixed selective scale factor (paper-units alpha = 2): the write
        # path splits per the *provided* popularity, and fig22 measures the
        # write mechanics, not the search.
        sp = SPCachePolicy(
            pop, EC2_CLUSTER, alpha=2.0 / MB, seed=DEFAULTS.seed_policy
        )
        ec = ECCachePolicy(pop, EC2_CLUSTER, seed=DEFAULTS.seed_policy)
        rep = SelectiveReplicationPolicy(
            pop,
            EC2_CLUSTER,
            top_fraction=0.10,
            replicas=4,
            seed=DEFAULTS.seed_policy,
        )
        chunk = FixedChunkingPolicy(
            pop, EC2_CLUSTER, chunk_size=4 * MB, seed=DEFAULTS.seed_policy
        )
        lat = {
            "sp": write_latency(sp.plan_write(file_id), client_bw, goodput),
            "ec": write_latency(ec.plan_write(file_id), client_bw, goodput),
            "rep": write_latency(rep.plan_write(file_id), client_bw, goodput),
            "chunk": write_latency(
                chunk.plan_write(file_id), client_bw, goodput
            ),
        }
        rows.append(
            {
                "size_mb": size_mb,
                "sp_write_s": lat["sp"],
                "ec_write_s": lat["ec"],
                "rep_write_s": lat["rep"],
                "chunk4mb_write_s": lat["chunk"],
            }
        )
        for key in speedups:
            speedups[key].append(lat[key] / lat["sp"])
    rows.append(
        {
            "size_mb": "avg speedup vs SP",
            "sp_write_s": 1.0,
            "ec_write_s": float(np.mean(speedups["ec"])),
            "rep_write_s": float(np.mean(speedups["rep"])),
            "chunk4mb_write_s": float(np.mean(speedups["chunk"])),
        }
    )
    return rows
