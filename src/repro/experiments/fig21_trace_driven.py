"""Fig. 21 — trace-driven simulation with realistic sizes and arrivals.

Setup (Sec. 7.7): 3k files with Yahoo!-distributed sizes (larger = more
popular), Zipf(1.1) popularity, bursty Google-style arrivals instead of
Poisson, injected stragglers, a throttled 300 GB cluster cache (30 x
10 GB), a cache miss costing 3x a hit, and EC-Cache decoding at 20 %.

Paper result: mean latencies 3.8 s (SP-Cache), 6.0 s (EC-Cache), 44.1 s
(selective replication) — redundant caching of big hot files wrecks the
hit ratio, and replication collapses.
"""

from __future__ import annotations

from repro.analysis.stats import cdf_points
from repro.cluster import StragglerInjector, simulate_reads
from repro.experiments.config import DEFAULTS, EC2_CLUSTER, sim_config
from repro.experiments.skew_resilience import default_schemes
from repro.experiments.registry import experiment
from repro.experiments.workload_cache import cached_build
from repro.workloads import GoogleArrivalModel, trace_from_times, yahoo_file_population

__all__ = ["run_fig21"]

PAPER = {"mean_s": {"sp-cache": 3.8, "ec-cache": 6.0, "selective-replication": 44.1}}


@experiment(paper=PAPER)
def run_fig21(
    scale: float = 1.0,
    n_files: int = 3000,
    rate: float = 3.0,
) -> list[dict]:
    # Rate calibration: with Yahoo!-distributed sizes the expected bytes
    # per request are ~490 MB (hot files are huge), so the 30 x 1 Gbps
    # cluster saturates just above 7 req/s *on average* — and the Google
    # arrival model bursts at ~4x its quiet rate, so sustained stability
    # needs mean utilisation well below that.  Rate 3 (~0.4 mean
    # utilisation, >1 during bursts) is the loaded-but-recoverable regime
    # the paper's numbers (3.8 s vs 6.0 s vs 44.1 s) imply.
    pop = cached_build(
        "yahoo_population",
        (int(n_files), float(rate), 1.1, 3),
        lambda: yahoo_file_population(
            n_files, total_rate=rate, zipf_exponent=1.1, seed=3
        ),
    )
    n_requests = DEFAULTS.requests(scale)
    trace = cached_build(
        "google_trace",
        (int(n_files), float(rate), n_requests, DEFAULTS.seed_trace),
        lambda: trace_from_times(
            GoogleArrivalModel().arrival_times(
                rate, horizon=n_requests / rate, seed=DEFAULTS.seed_trace
            ),
            pop,
            seed=DEFAULTS.seed_trace,
        ),
    )
    # Budget calibration: the paper's 300 GB cluster cache was *scarce* for
    # its (unpublished) dataset; we throttle to 80 % of the raw bytes so
    # redundancy actually costs residency: SP-Cache (1.0x footprint) barely
    # evicts while EC-Cache (1.4x) and replication must.
    budget = 0.8 * pop.total_bytes

    rows = []
    for name, factory in default_schemes(decode_overhead=0.2).items():
        policy = factory(pop, EC2_CLUSTER)
        result = simulate_reads(
            trace,
            policy,
            EC2_CLUSTER,
            sim_config(
                stragglers=StragglerInjector.injected(), cache_budget=budget
            ),
        )
        summary = result.summary()
        xs, _ = cdf_points(result.steady_state_latencies(), n_points=5)
        rows.append(
            {
                "scheme": name,
                "mean_s": summary.mean,
                "p50_s": summary.p50,
                "p95_s": summary.p95,
                "hit_ratio": result.hit_ratio,
                "cdf_p75_s": float(xs[3]),
                "paper_mean_s": PAPER["mean_s"][name],
            }
        )
    return rows
