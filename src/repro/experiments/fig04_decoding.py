"""Fig. 4 — EC-Cache's decoding overhead versus file size.

The paper measures decode time normalized by read latency on a (10, 14)
code: ~5-10 % for small files, consistently above 15 % for >= 100 MB
(box plot, Fig. 4).  We measure our real GF(256) Reed-Solomon codec on
real payloads.  Two normalizations are reported:

* ``measured`` — decode seconds of our pure-NumPy codec over the modeled
  read time.  Honest but pessimistic: ISA-L decodes ~50x faster than
  NumPy table lookups.
* ``calibrated`` — the same decode *work* rescaled to ISA-L-class
  throughput (3 GB/s), which is the figure the EC-Cache policy's 20 %
  default overhead is checked against.

The *shape* — overhead growing with file size toward a plateau — is
independent of the throughput constant.
"""

from __future__ import annotations

import numpy as np

from repro.common import GB, MB
from repro.ec.codec import RSFileCodec
from repro.experiments.config import EC2_CLUSTER
from repro.experiments.registry import experiment

__all__ = ["run_fig04"]

#: ISA-L-class decode throughput used for the calibrated column.
ISAL_THROUGHPUT = 3 * GB

#: Fixed per-read latency floor (RPC + connection setup) the transfer-time
#: model adds; this is why small files show *lower* decoding overhead —
#: their read latency is dominated by fixed costs, not bytes.
FIXED_READ_LATENCY = 0.02

PAPER = {"overhead_at_100mb": ">= 0.15", "simulation_setting": 0.20}


@experiment(paper=PAPER)
def run_fig04(
    sizes_mb: tuple[float, ...] = (1, 5, 10, 40, 100),
    trials: int = 2,
    seed: int = 0,
) -> list[dict]:
    rng = np.random.default_rng(seed)
    codec = RSFileCodec(k=10, n=14)
    client_bw = EC2_CLUSTER.effective_client_bandwidth
    rows = []
    for size_mb in sizes_mb:
        size = int(size_mb * MB)
        measured = []
        for _ in range(trials):
            data = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            shards, orig_len = codec.encode_file(data)
            ids = list(rng.choice(14, size=10, replace=False))
            codec.decode_file(ids, [shards[i] for i in ids], orig_len)
            measured.append(codec.last_decode_seconds)
        decode_s = float(np.median(measured))
        # Read latency model: 1.1x the bytes (late binding) through the
        # client NIC plus a fixed RPC/connection floor.
        read_s = FIXED_READ_LATENCY + 1.1 * size / client_bw
        calibrated_decode_s = size / ISAL_THROUGHPUT
        rows.append(
            {
                "size_mb": size_mb,
                "decode_s_numpy": decode_s,
                "overhead_measured": decode_s / (decode_s + read_s),
                "overhead_calibrated": calibrated_decode_s
                / (calibrated_decode_s + read_s),
                "decode_throughput_mb_s": size / MB / decode_s,
            }
        )
    return rows
