"""Fig. 12 — per-server load distribution under the three schemes.

Setup (Sec. 7.3): the 500-file workload at rate 18; "load" is the total
bytes a server actually ships.  Paper result: imbalance factors
eta = 0.18 (SP-Cache), 0.44 (EC-Cache), 1.18 (selective replication) —
SP-Cache 2.4x better than EC-Cache and 6.6x better than replication.
"""

from __future__ import annotations

from repro.common import GB
from repro.experiments.config import EC2_CLUSTER
from repro.experiments.skew_resilience import (
    compare_schemes,
    default_schemes,
    load_distribution_rows,
    sec73_population,
)
from repro.experiments.registry import experiment

__all__ = ["run_fig12"]

PAPER = {"eta": {"sp-cache": 0.18, "ec-cache": 0.44, "selective-replication": 1.18}}


@experiment(paper=PAPER, timeline=True)
def run_fig12(scale: float = 1.0, rate: float = 18.0) -> list[dict]:
    pop = sec73_population(rate)
    stats = compare_schemes(pop, EC2_CLUSTER, default_schemes(), scale=scale)
    rows = []
    for name, s in stats.items():
        dist = load_distribution_rows(s["server_bytes"])
        rows.append(
            {
                "scheme": name,
                "min_load_gb": dist["min"] / GB,
                "median_load_gb": dist["p50"] / GB,
                "max_load_gb": dist["max"] / GB,
                "eta": dist["eta"],
                "paper_eta": PAPER["eta"][name],
            }
        )
    return rows
