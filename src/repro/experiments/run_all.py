"""Regenerate every table and figure: ``python -m repro.experiments.run_all``.

Each experiment runs inside one shared telemetry wrapper
(:func:`run_experiment`): a root span covers the runner (control-plane
sections reached inside — the scale-factor search, repartition planning,
byte-store reads/writes — open child spans), a fresh metrics registry
isolates the run's counters, and the outcome lands three ways:

* the human-readable table on stdout and in ``results/<exp>.txt``;
* a schema-versioned run manifest in ``results/<exp>.json`` (git sha,
  seed, ``--scale``, config hash, structured rows, per-span wall times,
  metrics snapshot — see :mod:`repro.obs.runinfo`), aggregatable and
  diffable with ``python -m repro report``;
* optionally a JSONL event trace (``--trace``) and a Chrome/Perfetto
  timeline of every span in the pass (``--chrome-trace``), loadable at
  https://ui.perfetto.dev.

The load-balance/tail figures (fig12, fig13, fig16, fig19) additionally
run with sim-time timelines enabled (:mod:`repro.obs.timeline`); the
recorded sections land in their manifests' ``timelines`` list — render
with ``python -m repro timeline`` / ``repro tail`` — and
``--chrome-trace`` gains per-scheme counter tracks.

``--scale 0.25`` shrinks the simulated request counts for a quick pass;
``--only fig13`` runs a single experiment.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.analysis.tables import format_table
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.runinfo import build_manifest, write_manifest
from repro.obs.spans import (
    SpanCollector,
    collect_spans,
    span,
    write_chrome_trace,
)
from repro.obs.timeline import (
    TimelineConfig,
    chrome_counter_events,
    collect_timelines,
    use_timeline,
)
from repro.obs.tracing import FileSink, Tracer, use_tracer

from repro.experiments.config import DEFAULTS
from repro.experiments.fig01_trace_stats import run_fig01
from repro.experiments.fig02_caching_benefit import run_fig02
from repro.experiments.fig03_replication import run_fig03
from repro.experiments.fig04_decoding import run_fig04
from repro.experiments.fig05_simple_partition import run_fig05
from repro.experiments.fig06_goodput import run_fig06
from repro.experiments.fig08_upper_bound import run_fig08
from repro.experiments.fig10_config_overhead import run_fig10
from repro.experiments.fig11_partition_sizes import run_fig11
from repro.experiments.fig12_load_distribution import run_fig12
from repro.experiments.fig13_skew_resilience import run_fig13
from repro.experiments.fig14_fixed_chunking import run_fig14
from repro.experiments.fig15_compute_optimized import run_fig15
from repro.experiments.fig16_repartition import run_fig16
from repro.experiments.fig19_stragglers import run_fig19
from repro.experiments.fig20_hit_ratio import run_fig20
from repro.experiments.fig21_trace_driven import run_fig21
from repro.experiments.fig22_write_latency import run_fig22
from repro.experiments.theorem1 import run_theorem1

__all__ = ["EXPERIMENTS", "main", "run_experiment"]

#: Experiments whose table rows are *measured wall-clock* values rather
#: than deterministic simulated quantities.  Their manifests carry
#: ``config.timing_rows = True`` so ``repro report --diff`` compares the
#: rows with the tolerant wall-time rule instead of exact equality.
_TIMING_ROWS = frozenset({"fig10"})

#: Experiments that record sim-time timelines into their manifests: the
#: load-balance and tail-latency figures (fig12/fig13), recovery after a
#: popularity shift (fig16), and straggler mitigation (fig19).  Their
#: manifests carry the published timeline sections and ``repro timeline``
#: / ``repro tail`` render them.
_TIMELINE_EXPERIMENTS = frozenset({"fig12", "fig13", "fig16", "fig19"})

#: name -> (runner, accepts_scale)
EXPERIMENTS = {
    "fig01": (run_fig01, False),
    "fig02": (run_fig02, True),
    "fig03": (run_fig03, True),
    "fig04": (run_fig04, False),
    "fig05": (run_fig05, True),
    "fig06": (run_fig06, False),
    "fig08": (run_fig08, True),
    "fig10": (run_fig10, True),
    "fig11": (run_fig11, False),
    "fig12": (run_fig12, True),
    "fig13": (run_fig13, True),
    "fig14": (run_fig14, True),
    "fig15": (run_fig15, True),
    "fig16": (run_fig16, False),
    "fig19": (run_fig19, True),
    "fig20": (run_fig20, True),
    "fig21": (run_fig21, True),
    "fig22": (run_fig22, False),
    "theorem1": (run_theorem1, False),
}


def run_experiment(
    name: str, scale: float = 1.0
) -> tuple[list[dict], dict]:
    """Run one experiment under the shared telemetry wrapper.

    Returns ``(rows, manifest)``.  The runner executes inside a root
    ``experiment`` span and against a private metrics registry, so the
    manifest's span forest and metrics snapshot describe exactly this
    run; the process-wide registry is restored afterwards.  Span *events*
    still flow to whatever tracer is installed, so a traced pass captures
    the full hierarchy in its JSONL stream too.
    """
    runner, scalable = EXPERIMENTS[name]
    collector = SpanCollector()
    registry = MetricsRegistry()
    timelines: list[dict] = []
    record_timelines = name in _TIMELINE_EXPERIMENTS
    previous = set_registry(registry)
    try:
        with collect_spans(collector):
            with span("experiment", experiment=name):
                if record_timelines:
                    with collect_timelines(timelines):
                        with use_timeline(TimelineConfig()):
                            rows = (
                                runner(scale=scale) if scalable else runner()
                            )
                else:
                    rows = runner(scale=scale) if scalable else runner()
    finally:
        set_registry(previous)
    roots = [r for r in collector.roots() if r.name == "experiment"]
    wall_s = roots[0].wall_s if roots else 0.0
    config = {
        "experiment": name,
        "scale": scale if scalable else None,
        "accepts_scale": scalable,
        "timing_rows": name in _TIMING_ROWS,
        "timelines": record_timelines,
        "defaults": {
            "n_requests": DEFAULTS.n_requests,
            "seed_trace": DEFAULTS.seed_trace,
            "seed_policy": DEFAULTS.seed_policy,
            "seed_sim": DEFAULTS.seed_sim,
        },
    }
    manifest = build_manifest(
        name,
        rows,
        wall_s=wall_s,
        scale=scale if scalable else None,
        seed=DEFAULTS.seed_sim,
        config=config,
        spans=collector.records,
        metrics=registry.snapshot(),
        timelines=timelines,
    )
    return rows, manifest


def _run_and_write(
    names: list[str],
    scale: float,
    outdir: pathlib.Path,
    session_spans: SpanCollector,
    session_timelines: list[dict],
) -> None:
    # The outer timeline sink sees every section the per-experiment sinks
    # do (sinks nest), so ``--chrome-trace`` can add counter tracks for
    # the whole pass.
    with collect_spans(session_spans), collect_timelines(session_timelines):
        for name in names:
            rows, manifest = run_experiment(name, scale=scale)
            text = format_table(
                rows, title=f"== {name} ({manifest['wall_s']:.1f}s) =="
            )
            print(text)
            print()
            (outdir / f"{name}.txt").write_text(text + "\n")
            write_manifest(manifest, outdir / f"{name}.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--only", type=str, default=None)
    parser.add_argument("--out", type=str, default="results")
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a JSONL event trace of the whole pass to PATH",
    )
    parser.add_argument(
        "--chrome-trace", default=None, metavar="PATH",
        help="write every span as a Chrome/Perfetto trace-event timeline",
    )
    args = parser.parse_args(argv)

    outdir = pathlib.Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    names = [args.only] if args.only else list(EXPERIMENTS)
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2

    session_spans = SpanCollector()
    session_timelines: list[dict] = []
    if args.trace:
        sink = FileSink(args.trace)
        try:
            with use_tracer(Tracer(sink)):
                _run_and_write(
                    names, args.scale, outdir, session_spans,
                    session_timelines,
                )
        finally:
            sink.close()
        print(
            f"trace: {sink.n_records} events -> {sink.path}", file=sys.stderr
        )
    else:
        _run_and_write(
            names, args.scale, outdir, session_spans, session_timelines
        )

    if args.chrome_trace:
        n_spans = write_chrome_trace(
            session_spans,
            args.chrome_trace,
            process_name="repro.run_all",
            extra_events=chrome_counter_events(session_timelines),
        )
        print(
            f"chrome trace: {n_spans} spans -> {args.chrome_trace}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
