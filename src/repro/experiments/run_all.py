"""Regenerate every table and figure: ``python -m repro.experiments.run_all``.

The set of experiments is *data*: every ``fig*`` module registers an
:class:`~repro.experiments.registry.ExperimentSpec` (runner, paper
expectations, scale/timing/timeline flags, sweep parameters) and this
driver, the ``repro experiments`` CLI, the manifests, and the
EXPERIMENTS.md registry table all read from that one registry — there is
no hand-maintained experiment list here.  ``--list`` prints the registry;
``--only`` takes comma-separated names and glob patterns
(``--only 'fig1*,theorem1'``).

Each experiment runs inside one shared telemetry wrapper
(:func:`run_experiment`): a root span covers the runner (control-plane
sections reached inside — the scale-factor search, repartition planning,
byte-store reads/writes — open child spans), a fresh metrics registry
isolates the run's counters, and the outcome lands three ways:

* the human-readable table on stdout and in ``results/<exp>.txt``;
* a schema-versioned run manifest in ``results/<exp>.json`` (git sha,
  seed, ``--scale``, config hash, the registered spec metadata,
  structured rows, per-span wall times, metrics snapshot — see
  :mod:`repro.obs.runinfo`), aggregatable and diffable with
  ``python -m repro report``;
* optionally a JSONL event trace (``--trace``) and a Chrome/Perfetto
  timeline of every span in the pass (``--chrome-trace``), loadable at
  https://ui.perfetto.dev.

Experiments whose spec sets ``timeline`` (fig12, fig13, fig16, fig19)
additionally run with sim-time timelines enabled
(:mod:`repro.obs.timeline`); the recorded sections land in their
manifests' ``timelines`` list — render with ``python -m repro timeline``
/ ``repro tail`` — and ``--chrome-trace`` gains per-scheme counter
tracks.

``--jobs N`` fans the pass out over a process pool: the per-experiment
metrics registry and span collector already isolate every run, so a
parallel pass produces the same manifests as a serial one modulo
wall-clock spans and workload-cache hit/miss splits (each worker warms a
private cache) — ``repro report --diff`` between the two passes is clean
by construction.  Session-wide tracing (``--trace`` /
``--chrome-trace``) spans processes poorly, so it requires ``--jobs 1``.

``--scale 0.25`` shrinks the simulated request counts for a quick pass.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.analysis.tables import format_table
from repro.obs.causal import CausalConfig, collect_causal, use_causal
from repro.obs.membership import collect_membership
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.popularity import collect_popularity
from repro.obs.runinfo import build_manifest, write_manifest
from repro.obs.slo import collect_slo, default_slo_config, parse_slo, use_slo
from repro.obs.spans import (
    SpanCollector,
    collect_spans,
    span,
    write_chrome_trace,
)
from repro.obs.timeline import (
    TimelineConfig,
    chrome_counter_events,
    collect_timelines,
    use_timeline,
)
from repro.obs.tracing import FileSink, Tracer, use_tracer

from repro.experiments.config import DEFAULTS, defaults_dict
from repro.experiments.registry import (
    UnknownExperimentError,
    get_spec,
    registry_table_rows,
    resolve_names,
)

__all__ = ["main", "run_experiment"]


def run_experiment(
    name: str,
    scale: float = 1.0,
    batch_size: int | None = None,
    slo: str | None = None,
    **params,
) -> tuple[list[dict], dict]:
    """Run one registered experiment under the shared telemetry wrapper.

    Returns ``(rows, manifest)``.  The runner executes inside a root
    ``experiment`` span and against a private metrics registry, so the
    manifest's span forest and metrics snapshot describe exactly this
    run.  Teardown is exception-safe: the process-wide registry (and the
    span/timeline contexts, which unwind with the ``with`` blocks) is
    restored even when the runner raises.  Span *events* still flow to
    whatever tracer is installed, so a traced pass captures the full
    hierarchy in its JSONL stream too.  ``params`` override the spec's
    sweep parameters (``run_experiment("fig12", rate=22.0)``).
    ``batch_size`` installs an ambient vectorized batch size for
    batchable specs (see :meth:`ExperimentSpec.run`); the value used is
    recorded in the manifest's config.  ``slo`` is a compact objective
    spec (``"p99<0.02,miss<0.5"``, see :func:`repro.obs.slo.parse_slo`);
    ``None`` installs the loose :func:`~repro.obs.slo.default_slo_config`
    so every experiment's runs are judged (quietly, when healthy) and
    the resulting sections land in the manifest's ``slo`` list.
    """
    spec = get_spec(name)
    slo_config = parse_slo(slo) if slo is not None else default_slo_config()
    collector = SpanCollector()
    registry = MetricsRegistry()
    timelines: list[dict] = []
    popularity: list[dict] = []
    slo_sections: list[dict] = []
    causal_sections: list[dict] = []
    membership_sections: list[dict] = []
    previous = set_registry(registry)
    try:
        with collect_spans(collector):
            # Popularity/SLO/membership sections are collected
            # unconditionally: runs only publish them when a config opts
            # in (the ambient SLO config below opts every simulated run
            # in; membership sections come only from churn experiments),
            # so the sinks are free for every other experiment.
            with collect_popularity(popularity), collect_slo(slo_sections), \
                    collect_membership(membership_sections):
                with use_slo(slo_config):
                    with span("experiment", experiment=spec.name):
                        if spec.timeline:
                            # Timeline experiments also collect causal
                            # critical paths — the same per-partition
                            # records feed both, and the sections are
                            # deterministic so ``report --diff`` stays
                            # clean.
                            with collect_timelines(timelines), \
                                    collect_causal(causal_sections):
                                with use_timeline(TimelineConfig()), \
                                        use_causal(CausalConfig()):
                                    rows = spec.run(
                                        scale=scale,
                                        batch_size=batch_size,
                                        **params,
                                    )
                        else:
                            rows = spec.run(
                                scale=scale, batch_size=batch_size, **params
                            )
    finally:
        set_registry(previous)
    roots = [r for r in collector.roots() if r.name == "experiment"]
    wall_s = roots[0].wall_s if roots else 0.0
    config = {
        "experiment": spec.name,
        "scale": scale if spec.accepts_scale else None,
        "accepts_scale": spec.accepts_scale,
        "timing_rows": spec.timing_rows,
        "timelines": spec.timeline,
        "batch_size": batch_size if spec.batchable else None,
        "slo": slo,
        "params": {k: repr(v) for k, v in sorted(params.items())},
        "spec": spec.describe(),
        "defaults": defaults_dict(),
    }
    manifest = build_manifest(
        spec.name,
        rows,
        wall_s=wall_s,
        scale=scale if spec.accepts_scale else None,
        seed=DEFAULTS.seed_sim,
        config=config,
        spans=collector.records,
        metrics=registry.snapshot(),
        timelines=timelines,
        popularity=popularity,
        slo=slo_sections,
        causal=causal_sections,
        membership=membership_sections,
    )
    return rows, manifest


def _write_result(
    name: str, rows: list[dict], manifest: dict, outdir: pathlib.Path
) -> None:
    text = format_table(
        rows, title=f"== {name} ({manifest['wall_s']:.1f}s) =="
    )
    print(text)
    print()
    (outdir / f"{name}.txt").write_text(text + "\n")
    write_manifest(manifest, outdir / f"{name}.json")


def _run_serial(
    names: list[str],
    scale: float,
    outdir: pathlib.Path,
    session_spans: SpanCollector,
    session_timelines: list[dict],
    batch_size: int | None = None,
    slo: str | None = None,
) -> None:
    # The outer timeline sink sees every section the per-experiment sinks
    # do (sinks nest), so ``--chrome-trace`` can add counter tracks for
    # the whole pass.
    with collect_spans(session_spans), collect_timelines(session_timelines):
        for name in names:
            rows, manifest = run_experiment(
                name, scale=scale, batch_size=batch_size, slo=slo
            )
            _write_result(name, rows, manifest, outdir)


def _pool_run(
    name: str,
    scale: float,
    batch_size: int | None = None,
    slo: str | None = None,
) -> tuple[str, list[dict], dict]:
    """Process-pool worker: one experiment, full telemetry wrapper."""
    from repro.experiments.registry import load_all

    load_all()  # spawn-start workers import this module fresh
    rows, manifest = run_experiment(
        name, scale=scale, batch_size=batch_size, slo=slo
    )
    return name, rows, manifest


def _run_parallel(
    names: list[str],
    scale: float,
    outdir: pathlib.Path,
    jobs: int,
    batch_size: int | None = None,
    slo: str | None = None,
) -> None:
    """Fan the pass out over a process pool; emit in registry order.

    Tables print and manifests land in the same deterministic order as a
    serial pass, whatever order the workers finish in.
    """
    results: dict[str, tuple[list[dict], dict]] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(names))) as pool:
        futures = {
            pool.submit(_pool_run, name, scale, batch_size, slo): name
            for name in names
        }
        for future in as_completed(futures):
            name, rows, manifest = future.result()
            results[name] = (rows, manifest)
            print(
                f"done: {name} ({manifest['wall_s']:.1f}s)", file=sys.stderr
            )
    for name in names:
        rows, manifest = results[name]
        _write_result(name, rows, manifest, outdir)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--only", type=str, default=None, metavar="NAMES",
        help=(
            "comma-separated experiment names and/or glob patterns "
            "(e.g. 'fig12,fig13' or 'fig1*')"
        ),
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print the experiment registry as a table and exit",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run up to N experiments in parallel worker processes",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="B",
        help=(
            "vectorized planning batch size for batchable experiments "
            "(bit-exact vs scalar; unset runs the scalar engine)"
        ),
    )
    parser.add_argument(
        "--slo", type=str, default=None, metavar="SPEC",
        help=(
            "SLO objectives every experiment is judged against, e.g. "
            "'p99<0.02,miss<0.5,imbalance<3' (unset uses loose defaults "
            "that stay quiet on healthy runs)"
        ),
    )
    parser.add_argument("--out", type=str, default="results")
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a JSONL event trace of the whole pass to PATH",
    )
    parser.add_argument(
        "--chrome-trace", default=None, metavar="PATH",
        help="write every span as a Chrome/Perfetto trace-event timeline",
    )
    args = parser.parse_args(argv)

    if args.list:
        print(format_table(registry_table_rows(), title="experiment registry"))
        return 0
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.jobs > 1 and (args.trace or args.chrome_trace):
        print(
            "--trace/--chrome-trace record a single-process session; "
            "use --jobs 1 with them",
            file=sys.stderr,
        )
        return 2

    try:
        names = resolve_names(args.only)
    except UnknownExperimentError as exc:
        print(exc, file=sys.stderr)
        return 2

    outdir = pathlib.Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)

    if args.batch_size is not None and args.batch_size < 1:
        print("--batch-size must be >= 1", file=sys.stderr)
        return 2

    if args.slo is not None:
        try:
            parse_slo(args.slo)  # fail fast before any experiment runs
        except ValueError as exc:
            print(f"--slo: {exc}", file=sys.stderr)
            return 2

    if args.jobs > 1:
        _run_parallel(
            names, args.scale, outdir, args.jobs,
            batch_size=args.batch_size, slo=args.slo,
        )
        return 0

    session_spans = SpanCollector()
    session_timelines: list[dict] = []
    if args.trace:
        sink = FileSink(args.trace)
        try:
            with use_tracer(Tracer(sink)):
                _run_serial(
                    names, args.scale, outdir, session_spans,
                    session_timelines, batch_size=args.batch_size,
                    slo=args.slo,
                )
        finally:
            sink.close()
        print(
            f"trace: {sink.n_records} events -> {sink.path}", file=sys.stderr
        )
    else:
        _run_serial(
            names, args.scale, outdir, session_spans, session_timelines,
            batch_size=args.batch_size, slo=args.slo,
        )

    if args.chrome_trace:
        n_spans = write_chrome_trace(
            session_spans,
            args.chrome_trace,
            process_name="repro.run_all",
            extra_events=chrome_counter_events(session_timelines),
        )
        print(
            f"chrome trace: {n_spans} spans -> {args.chrome_trace}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
