"""Regenerate every table and figure: ``python -m repro.experiments.run_all``.

Writes each experiment's table to stdout and to ``results/<exp>.txt``.
``--scale 0.25`` shrinks the simulated request counts for a quick pass;
``--only fig13`` runs a single experiment.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.analysis.tables import format_table

from repro.experiments.fig01_trace_stats import run_fig01
from repro.experiments.fig02_caching_benefit import run_fig02
from repro.experiments.fig03_replication import run_fig03
from repro.experiments.fig04_decoding import run_fig04
from repro.experiments.fig05_simple_partition import run_fig05
from repro.experiments.fig06_goodput import run_fig06
from repro.experiments.fig08_upper_bound import run_fig08
from repro.experiments.fig10_config_overhead import run_fig10
from repro.experiments.fig11_partition_sizes import run_fig11
from repro.experiments.fig12_load_distribution import run_fig12
from repro.experiments.fig13_skew_resilience import run_fig13
from repro.experiments.fig14_fixed_chunking import run_fig14
from repro.experiments.fig15_compute_optimized import run_fig15
from repro.experiments.fig16_repartition import run_fig16
from repro.experiments.fig19_stragglers import run_fig19
from repro.experiments.fig20_hit_ratio import run_fig20
from repro.experiments.fig21_trace_driven import run_fig21
from repro.experiments.fig22_write_latency import run_fig22
from repro.experiments.theorem1 import run_theorem1

__all__ = ["EXPERIMENTS", "main"]

#: name -> (runner, accepts_scale)
EXPERIMENTS = {
    "fig01": (run_fig01, False),
    "fig02": (run_fig02, True),
    "fig03": (run_fig03, True),
    "fig04": (run_fig04, False),
    "fig05": (run_fig05, True),
    "fig06": (run_fig06, False),
    "fig08": (run_fig08, True),
    "fig10": (run_fig10, False),
    "fig11": (run_fig11, False),
    "fig12": (run_fig12, True),
    "fig13": (run_fig13, True),
    "fig14": (run_fig14, True),
    "fig15": (run_fig15, True),
    "fig16": (run_fig16, False),
    "fig19": (run_fig19, True),
    "fig20": (run_fig20, True),
    "fig21": (run_fig21, True),
    "fig22": (run_fig22, False),
    "theorem1": (run_theorem1, False),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--only", type=str, default=None)
    parser.add_argument("--out", type=str, default="results")
    args = parser.parse_args(argv)

    outdir = pathlib.Path(args.out)
    outdir.mkdir(exist_ok=True)
    names = [args.only] if args.only else list(EXPERIMENTS)
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2
        runner, scalable = EXPERIMENTS[name]
        start = time.perf_counter()
        rows = runner(scale=args.scale) if scalable else runner()
        elapsed = time.perf_counter() - start
        text = format_table(rows, title=f"== {name} ({elapsed:.1f}s) ==")
        print(text)
        print()
        (outdir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
