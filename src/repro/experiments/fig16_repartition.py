"""Figs. 16-18 — reacting to popularity shifts with parallel repartition.

Setup (Sec. 7.4): files of 50 MB; the popularity ranks of all files are
randomly shuffled (a far more drastic shift than production traces show);
SP-Cache re-plans with Algorithm 2.

Paper results:
* Fig. 16 — parallel repartition finishes in < 3 s up to 350 files and
  grows slowly; the sequential scheme needs ~319 s (two orders slower).
* Fig. 17 — the fraction of files needing repartition *decreases* with the
  file count (heavy tail: most files stay single-partition).
* Fig. 18 — greedy least-loaded placement (parallel scheme) balances load
  better than random placement (sequential scheme) after the shift.
"""

from __future__ import annotations

import numpy as np

from repro.core import plan_repartition
from repro.core.partitioner import partition_counts
from repro.core.placement import (
    place_partitions_random,
    placement_server_loads,
)
from repro.core.repartition import (
    repartition_time_parallel,
    repartition_time_sequential,
)
from repro.cluster import imbalance_factor
from repro.experiments.config import EC2_CLUSTER
from repro.obs.timeline import get_timeline_config
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset, shuffled_popularity
from repro.experiments.registry import experiment

__all__ = ["run_fig16"]

PAPER = {
    "parallel_time": "< 3 s up to 350 files",
    "sequential_time": "~319 s",
    "changed_fraction": "decreases with file count",
    "greedy_beats_random": True,
}


def _emit_recovery_timelines(n_files: int = 200, seed: int = 0) -> None:
    """Publish three sim-time timelines bracketing one popularity shift.

    The repartition rows above are planning-only (no simulation), so when
    timeline collection is ambiently enabled this runs three small
    simulations — the pre-shift layout on the pre-shift workload, the
    *stale* layout serving the shifted workload, and the repartitioned
    layout on the same shifted workload — whose published sections show
    the load imbalance appearing and then recovering.  Sections are
    labelled by scheme ``pre-shift`` / ``stale-layout`` /
    ``repartitioned``.
    """
    from repro.cluster import SimulationConfig, simulate_reads
    from repro.workloads import poisson_trace

    pop = paper_fileset(
        n_files, size_mb=50, zipf_exponent=1.05, total_rate=10.0
    )
    shifted = pop.with_popularities(
        shuffled_popularity(pop.popularities, seed=seed)
    )
    stale = SPCachePolicy(pop, EC2_CLUSTER, straggler_aware=True, seed=seed)
    fresh = SPCachePolicy(
        shifted, EC2_CLUSTER, straggler_aware=True, seed=seed
    )
    config = SimulationConfig(jitter="deterministic", seed=seed)
    for label, policy, workload in (
        ("pre-shift", stale, pop),
        ("stale-layout", stale, shifted),
        ("repartitioned", fresh, shifted),
    ):
        trace = poisson_trace(workload, n_requests=400, seed=seed)
        policy.name = label  # labels the published timeline section
        simulate_reads(trace, policy, EC2_CLUSTER, config)


@experiment(paper=PAPER, timeline=True)
def run_fig16(
    file_counts: tuple[int, ...] = (100, 150, 200, 250, 300, 350),
    trials: int = 5,
) -> list[dict]:
    rows = []
    for n_files in file_counts:
        par_times, seq_times, fracs, etas_greedy, etas_random = (
            [],
            [],
            [],
            [],
            [],
        )
        for trial in range(trials):
            pop = paper_fileset(
                n_files, size_mb=50, zipf_exponent=1.05, total_rate=10.0
            )
            # Straggler-aware configuration: selective splitting, so most
            # cold files hold a single partition and survive the shuffle
            # untouched — the regime Figs. 16-17 measure.
            policy = SPCachePolicy(
                pop, EC2_CLUSTER, straggler_aware=True, seed=trial
            )
            old_ks = policy.partition_counts()
            old_servers = policy.servers_of

            shifted = pop.with_popularities(
                shuffled_popularity(pop.popularities, seed=trial)
            )
            plan = plan_repartition(
                shifted,
                EC2_CLUSTER,
                old_ks,
                old_servers,
                alpha=policy.alpha,
                seed=trial,
            )
            par_times.append(
                repartition_time_parallel(plan, shifted, EC2_CLUSTER, old_ks)
            )
            seq_times.append(
                repartition_time_sequential(
                    plan, shifted, EC2_CLUSTER, old_ks
                )
            )
            fracs.append(plan.changed_fraction)
            etas_greedy.append(
                imbalance_factor(
                    placement_server_loads(
                        plan.new_servers_of,
                        shifted.loads,
                        EC2_CLUSTER.n_servers,
                    )
                )
            )
            # The sequential baseline re-places everything randomly.
            random_servers = place_partitions_random(
                partition_counts(
                    shifted, plan.alpha, n_servers=EC2_CLUSTER.n_servers
                ),
                EC2_CLUSTER.n_servers,
                seed=trial + 1000,
            )
            etas_random.append(
                imbalance_factor(
                    placement_server_loads(
                        random_servers, shifted.loads, EC2_CLUSTER.n_servers
                    )
                )
            )
        rows.append(
            {
                "n_files": n_files,
                "parallel_s": float(np.mean(par_times)),
                "sequential_s": float(np.mean(seq_times)),
                "speedup": float(np.mean(seq_times) / np.mean(par_times)),
                "changed_fraction": float(np.mean(fracs)),
                "eta_greedy": float(np.mean(etas_greedy)),
                "eta_random": float(np.mean(etas_random)),
            }
        )
    if get_timeline_config() is not None:
        _emit_recovery_timelines()
    return rows
