"""Fig. 5 + Table 3 — simple (uniform) partition, with and without stragglers.

Setup (Sec. 4.1/4.2): the Sec. 2.2 cluster stress-tested at rate 10; every
file split into the same ``k`` partitions; stragglers injected per read
with probability 0.05 and Bing-profiled delay factors.

Paper shape: without stragglers the mean latency collapses from ~20 s
(k=1, Fig. 2) to 1-1.3 s and the CV falls with k; with stragglers the
latency stops improving and the CV *rises* with k (wide fork-joins are
exposed), which is the whole case for *selective* partition.
"""

from __future__ import annotations

from repro.cluster import StragglerInjector, simulate_reads
from repro.experiments.config import DEFAULTS, EC2_CLUSTER, sim_config
from repro.policies import SimplePartitionPolicy
from repro.workloads import paper_fileset, poisson_trace
from repro.experiments.registry import experiment

__all__ = ["run_fig05"]

PAPER = {
    "latency_no_stragglers": "1-1.3 s for k in 3..27",
    "cv_no_stragglers": {3: 1.02, 9: 0.75, 15: 0.55, 21: 0.44, 27: 0.48},
    "cv_stragglers": {3: 1.03, 9: 1.10, 15: 1.05, 21: 1.17, 27: 1.35},
}


@experiment(paper=PAPER)
def run_fig05(
    scale: float = 1.0, ks: tuple[int, ...] = (1, 3, 9, 15, 21, 27)
) -> list[dict]:
    pop = paper_fileset(50, size_mb=40, zipf_exponent=1.1, total_rate=10.0)
    trace = poisson_trace(
        pop, n_requests=DEFAULTS.requests(scale), seed=DEFAULTS.seed_trace
    )
    rows = []
    for k in ks:
        policy = SimplePartitionPolicy(
            pop, EC2_CLUSTER, k=k, seed=DEFAULTS.seed_policy
        )
        clean = simulate_reads(
            trace,
            policy,
            EC2_CLUSTER,
            sim_config(stragglers=StragglerInjector.none()),
        ).summary()
        strag = simulate_reads(
            trace,
            policy,
            EC2_CLUSTER,
            sim_config(stragglers=StragglerInjector.injected()),
        ).summary()
        rows.append(
            {
                "k": k,
                "mean_s": clean.mean,
                "mean_s_stragglers": strag.mean,
                "cv": clean.cv,
                "cv_stragglers": strag.cv,
                "paper_cv": PAPER["cv_no_stragglers"].get(k, ""),
                "paper_cv_strag": PAPER["cv_stragglers"].get(k, ""),
            }
        )
    return rows
