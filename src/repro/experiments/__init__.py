"""Experiment runners: one module per table/figure of the evaluation.

Every runner registers itself in the declarative registry
(:mod:`repro.experiments.registry`) via the ``@experiment`` decorator,
declaring its paper-expectation table, whether it takes the ``scale``
knob, its timing/timeline flags, and its sweep parameters.  The runner
returns a list of row dicts (ready for
:func:`repro.analysis.tables.print_table`).  The benchmarks in
``benchmarks/`` wrap these runners; ``python -m repro.experiments.run_all``
(optionally ``--jobs N`` for a parallel pass) regenerates everything into
``results/``, and shared workload builds are memoized by
:mod:`repro.experiments.workload_cache` so one pass constructs each
population/trace exactly once.
"""

from repro.experiments.config import (
    EC2_CLUSTER,
    ExperimentDefaults,
    sim_config,
)
from repro.experiments.registry import (
    ExperimentSpec,
    SweepParam,
    UnknownExperimentError,
    all_specs,
    experiment,
    load_all,
    resolve_names,
)

__all__ = [
    "EC2_CLUSTER",
    "ExperimentDefaults",
    "ExperimentSpec",
    "SweepParam",
    "UnknownExperimentError",
    "all_specs",
    "experiment",
    "load_all",
    "resolve_names",
    "sim_config",
]
