"""Experiment runners: one module per table/figure of the evaluation.

Every runner returns a list of row dicts (ready for
:func:`repro.analysis.tables.print_table`) and takes a ``scale`` knob that
shrinks request counts for quick runs.  The benchmarks in ``benchmarks/``
wrap these runners; ``python -m repro.experiments.run_all`` regenerates
everything into ``results/``.
"""

from repro.experiments.config import (
    EC2_CLUSTER,
    ExperimentDefaults,
    sim_config,
)

__all__ = ["EC2_CLUSTER", "ExperimentDefaults", "sim_config"]
