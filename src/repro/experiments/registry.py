"""Declarative experiment registry: every figure is data, not glue.

Each ``fig*`` module (and ``theorem1``) declares itself with the
:func:`experiment` decorator; the resulting :class:`ExperimentSpec`
carries everything the rest of the system previously kept in side-car
structures — the name→runner dict in ``run_all``, the ``_TIMING_ROWS``
and ``_TIMELINE_EXPERIMENTS`` frozensets, the ad-hoc ``PAPER``
expectation dicts — plus the runner's sweep parameters (names, types,
defaults introspected from its signature).  ``run_all``, the ``repro
experiments`` CLI, manifest writing, ``repro report``, and the
EXPERIMENTS.md registry table all read from this one source of truth.

Usage in an experiment module::

    PAPER = {"eta": {...}}

    @experiment(paper=PAPER, timeline=True)
    def run_fig12(scale: float = 1.0, rate: float = 18.0) -> list[dict]:
        ...

The decorator returns the function unchanged (benchmarks and tests keep
calling ``run_fig12(...)`` directly) and attaches the spec as
``run_fig12.spec``.  :func:`load_all` imports every experiment module in
the package so the registry is complete before use; it is idempotent.

Selection (:func:`resolve_names`) accepts comma-separated lists and
shell-style glob patterns (``fig1*``), preserves registry order, and
raises :class:`UnknownExperimentError` — listing the valid names — on a
token that matches nothing.
"""

from __future__ import annotations

import fnmatch
import importlib
import inspect
import pkgutil
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = [
    "ExperimentSpec",
    "SweepParam",
    "UnknownExperimentError",
    "all_specs",
    "experiment",
    "get_spec",
    "load_all",
    "registry_table_rows",
    "render_registry_markdown",
    "resolve_names",
    "sync_experiments_md",
]

#: Package submodules that are infrastructure, not experiments.
_INFRA_MODULES = frozenset(
    {"config", "registry", "run_all", "skew_resilience", "workload_cache"}
)

_REGISTRY: dict[str, "ExperimentSpec"] = {}
_LOADED = False


class UnknownExperimentError(KeyError):
    """A selection token matched no registered experiment."""

    def __init__(self, token: str, valid: tuple[str, ...]) -> None:
        self.token = token
        self.valid = valid
        super().__init__(
            f"unknown experiment {token!r}; valid names: {', '.join(valid)}"
        )

    def __str__(self) -> str:  # KeyError quotes its message otherwise
        return self.args[0]


@dataclass(frozen=True)
class SweepParam:
    """One sweepable runner parameter: its name, type, and default."""

    name: str
    type: str
    default: Any

    def json_default(self) -> Any:
        """The default as a JSON-ready value (manifests, tables).

        Scalars and scalar sequences pass through; rich objects (e.g. a
        :class:`~repro.common.ClusterSpec`) collapse to their type name —
        the table documents *that* the knob exists, not its innards.
        """
        if isinstance(self.default, (bool, int, float, str, type(None))):
            return self.default
        if isinstance(self.default, (tuple, list)) and all(
            isinstance(v, (bool, int, float, str)) for v in self.default
        ):
            return list(self.default)
        return f"<{type(self.default).__name__}>"

    def render(self) -> str:
        default = self.json_default()
        if isinstance(default, list):
            default = tuple(default)
        return f"{self.name}={default!r}"


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the harness needs to know about one experiment.

    ``paper`` is the module's expectation table (the old ``PAPER`` dict);
    ``timing_rows`` marks rows as wall-clock measurements for the
    tolerant diff rule; ``timeline`` enables sim-time timeline recording;
    ``sweep`` lists the runner's tunable parameters beyond ``scale``.
    ``batchable`` declares that the runner's simulations are safe to run
    under an ambient vectorized batch size (the default — every runner
    going through :func:`repro.cluster.simulate_reads` qualifies because
    the batched planner is bit-exact); experiments that measure the
    scalar engine itself opt out with ``batchable=False``.
    """

    name: str
    runner: Callable[..., list[dict]]
    description: str
    paper: Mapping[str, Any]
    accepts_scale: bool
    timing_rows: bool = False
    timeline: bool = False
    batchable: bool = True
    sweep: tuple[SweepParam, ...] = field(default_factory=tuple)
    module: str = ""

    def run(
        self,
        scale: float = 1.0,
        batch_size: int | None = None,
        **params: Any,
    ) -> list[dict]:
        """Invoke the runner, forwarding ``scale`` only if it is accepted.

        ``batch_size`` installs an ambient vectorized-planning batch size
        (:func:`repro.cluster.engine.use_batching`) around the run when
        the spec is ``batchable``; non-batchable specs silently run
        scalar so a fleet-wide ``run_all --batch-size`` stays valid.
        """
        known = {p.name for p in self.sweep}
        unknown = set(params) - known
        if unknown:
            raise TypeError(
                f"{self.name} has no sweep parameter(s) "
                f"{', '.join(sorted(unknown))}; declared: "
                f"{', '.join(sorted(known)) or '(none)'}"
            )
        if batch_size is not None and self.batchable:
            from repro.cluster.engine import use_batching

            with use_batching(batch_size):
                if self.accepts_scale:
                    return self.runner(scale=scale, **params)
                return self.runner(**params)
        if self.accepts_scale:
            return self.runner(scale=scale, **params)
        return self.runner(**params)

    def describe(self) -> dict[str, Any]:
        """JSON-ready spec metadata for run manifests (``config.spec``)."""
        return {
            "description": self.description,
            "paper": dict(self.paper),
            "accepts_scale": self.accepts_scale,
            "timing_rows": self.timing_rows,
            "timeline": self.timeline,
            "batchable": self.batchable,
            "sweep": {p.name: {"type": p.type, "default": p.json_default()}
                      for p in self.sweep},
            "module": self.module,
        }


def _first_docstring_line(module_name: str) -> str:
    module = importlib.import_module(module_name)
    doc = inspect.getdoc(module) or ""
    return doc.splitlines()[0].strip() if doc else ""


def _type_name(annotation: Any, default: Any) -> str:
    if annotation is not inspect.Parameter.empty:
        return annotation if isinstance(annotation, str) else getattr(
            annotation, "__name__", str(annotation)
        )
    return type(default).__name__


def _derive_sweep(func: Callable[..., Any]) -> tuple[SweepParam, ...]:
    """Sweep params = every defaulted parameter except ``scale``."""
    params = []
    for p in inspect.signature(func).parameters.values():
        if p.name == "scale" or p.default is inspect.Parameter.empty:
            continue
        params.append(
            SweepParam(
                name=p.name,
                type=_type_name(p.annotation, p.default),
                default=p.default,
            )
        )
    return tuple(params)


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add one spec; re-registration from the same module is idempotent."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing.module != spec.module:
        raise ValueError(
            f"experiment {spec.name!r} already registered by "
            f"{existing.module}; refusing duplicate from {spec.module}"
        )
    _REGISTRY[spec.name] = spec
    return spec


def experiment(
    *,
    paper: Mapping[str, Any] | None = None,
    timing_rows: bool = False,
    timeline: bool = False,
    batchable: bool = True,
    name: str | None = None,
    description: str | None = None,
) -> Callable[[Callable[..., list[dict]]], Callable[..., list[dict]]]:
    """Decorator: register ``run_<name>`` as an experiment spec.

    The experiment name defaults to the function name minus its ``run_``
    prefix; the description defaults to the first line of the defining
    module's docstring; ``accepts_scale`` and the sweep-parameter table
    are introspected from the signature.
    """

    def decorate(func: Callable[..., list[dict]]) -> Callable[..., list[dict]]:
        exp_name = name or func.__name__.removeprefix("run_")
        sig = inspect.signature(func)
        spec = ExperimentSpec(
            name=exp_name,
            runner=func,
            description=(
                description
                if description is not None
                else _first_docstring_line(func.__module__)
            ),
            paper=dict(paper or {}),
            accepts_scale="scale" in sig.parameters,
            timing_rows=timing_rows,
            timeline=timeline,
            batchable=batchable,
            sweep=_derive_sweep(func),
            module=func.__module__,
        )
        register(spec)
        func.spec = spec  # type: ignore[attr-defined]
        return func

    return decorate


def load_all() -> dict[str, ExperimentSpec]:
    """Import every experiment module; returns the (ordered) registry.

    Experiment modules are every submodule of :mod:`repro.experiments`
    that is not infrastructure — no hand-maintained import list, so a
    new ``figXX`` module is picked up by dropping the file in.
    """
    global _LOADED
    if not _LOADED:
        import repro.experiments as pkg

        for info in pkgutil.iter_modules(pkg.__path__):
            if info.ispkg or info.name in _INFRA_MODULES:
                continue
            importlib.import_module(f"repro.experiments.{info.name}")
        _LOADED = True
    return all_specs()


def all_specs() -> dict[str, ExperimentSpec]:
    """The registry, ordered by experiment name."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def get_spec(name: str) -> ExperimentSpec:
    """Look up one spec; raises :class:`UnknownExperimentError`."""
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownExperimentError(name, tuple(sorted(_REGISTRY))) from None


def resolve_names(selection: str | None) -> list[str]:
    """Expand a ``--only`` selection into registry-ordered names.

    ``selection`` is a comma-separated list of names or glob patterns
    (``fig1*``); ``None`` (or ``""``) selects everything.  Order follows
    the registry; duplicates collapse.  A token matching nothing raises
    :class:`UnknownExperimentError` with the valid names.
    """
    names = list(load_all())
    if not selection:
        return names
    chosen: set[str] = set()
    for token in (t.strip() for t in selection.split(",")):
        if not token:
            continue
        matched = [n for n in names if fnmatch.fnmatchcase(n, token)]
        if not matched:
            raise UnknownExperimentError(token, tuple(names))
        chosen.update(matched)
    return [n for n in names if n in chosen]


def registry_table_rows() -> list[dict[str, Any]]:
    """One row per spec: the ``--list`` table and the EXPERIMENTS.md block."""
    rows = []
    for spec in load_all().values():
        rows.append(
            {
                "name": spec.name,
                "scale": "yes" if spec.accepts_scale else "no",
                "timing": "yes" if spec.timing_rows else "no",
                "timeline": "yes" if spec.timeline else "no",
                "batchable": "yes" if spec.batchable else "no",
                "paper_keys": ", ".join(str(k) for k in spec.paper) or "-",
                "sweep_params": ", ".join(p.render() for p in spec.sweep)
                or "-",
                "description": spec.description,
            }
        )
    return rows


#: Markers bracketing the autogenerated table in EXPERIMENTS.md.
REGISTRY_TABLE_BEGIN = "<!-- experiment-registry:begin (autogenerated) -->"
REGISTRY_TABLE_END = "<!-- experiment-registry:end -->"


def render_registry_markdown() -> str:
    """The autogenerated EXPERIMENTS.md registry table (with markers)."""
    lines = [
        REGISTRY_TABLE_BEGIN,
        "| name | scale | timing | timeline | batchable "
        "| paper expectation keys | sweep parameters | description |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for row in registry_table_rows():
        lines.append(
            "| "
            + " | ".join(
                str(row[c])
                for c in (
                    "name",
                    "scale",
                    "timing",
                    "timeline",
                    "batchable",
                    "paper_keys",
                    "sweep_params",
                    "description",
                )
            )
            + " |"
        )
    lines.append(REGISTRY_TABLE_END)
    return "\n".join(lines)


def sync_experiments_md(text: str) -> str:
    """Replace the marker-bracketed registry table inside ``text``.

    Raises ValueError when the markers are missing, so the docs test
    fails loudly instead of silently skipping the sync.
    """
    begin = text.find(REGISTRY_TABLE_BEGIN)
    end = text.find(REGISTRY_TABLE_END)
    if begin == -1 or end == -1 or end < begin:
        raise ValueError(
            "EXPERIMENTS.md is missing the experiment-registry markers"
        )
    end += len(REGISTRY_TABLE_END)
    return text[:begin] + render_registry_markdown() + text[end:]


def _main(argv: list[str] | None = None) -> int:  # pragma: no cover
    """``python -m repro.experiments.registry [--write PATH]``."""
    import argparse
    import pathlib

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write", default=None, metavar="PATH",
        help="rewrite the registry table block inside PATH (EXPERIMENTS.md)",
    )
    args = parser.parse_args(argv)
    if args.write:
        path = pathlib.Path(args.write)
        path.write_text(sync_experiments_md(path.read_text()))
        print(f"registry table synced -> {path}")
    else:
        print(render_registry_markdown())
    return 0


if __name__ == "__main__":  # pragma: no cover
    # ``python -m`` executes this file as ``__main__`` — a *second* module
    # object with its own empty registry.  Delegate to the canonical
    # import so the decorated experiment modules register where we look.
    from repro.experiments import registry as _canonical

    raise SystemExit(_canonical._main())
