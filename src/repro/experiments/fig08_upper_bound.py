"""Fig. 8 — the Eq. (9) upper bound versus simulated mean latency.

Setup (Secs. 5.3/7.2): 300 files of 100 MB on the 30-server cluster at an
aggregate rate of 8 req/s; sweep the scale factor and compare the derived
bound against measured mean read latency.

Paper shape: both curves dip steeply until an elbow (alpha ~= 1 in
MB-load units), then flatten; the bound tracks the measurement but the
measurement can exceed it at large alpha because the model ignores
networking overhead and stragglers.  We reproduce exactly that: the bound
column uses the *pure* paper model (exponential transfers, non-blocking
network), while the simulated column includes goodput loss and natural
stragglers.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import simulate_reads
from repro.common import MB
from repro.core import ForkJoinModel, partition_counts
from repro.core.placement import place_partitions_random
from repro.experiments.config import DEFAULTS, EC2_CLUSTER, sim_config
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace
from repro.experiments.registry import experiment

__all__ = ["run_fig08"]

PAPER = {
    "elbow_alpha": "~1 (load in MB)",
    "shape": "steep dip then plateau; bound tracks measurement",
}


@experiment(paper=PAPER)
def run_fig08(
    scale: float = 1.0,
    alphas_mb: tuple[float, ...] = (0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0),
) -> list[dict]:
    pop = paper_fileset(300, size_mb=100, zipf_exponent=1.05, total_rate=8.0)
    model = ForkJoinModel(pop, EC2_CLUSTER)  # pure paper model
    trace = poisson_trace(
        pop, n_requests=DEFAULTS.requests(scale), seed=DEFAULTS.seed_trace
    )
    rows = []
    rng = np.random.default_rng(DEFAULTS.seed_policy)
    for alpha_mb in alphas_mb:
        alpha = alpha_mb / MB
        ks = partition_counts(pop, alpha, n_servers=EC2_CLUSTER.n_servers)
        servers_of = place_partitions_random(
            ks, EC2_CLUSTER.n_servers, seed=rng
        )
        bound = model.evaluate(ks, servers_of).mean_bound
        policy = SPCachePolicy(
            pop, EC2_CLUSTER, alpha=alpha, seed=DEFAULTS.seed_policy
        )
        measured = simulate_reads(
            trace, policy, EC2_CLUSTER, sim_config()
        ).summary()
        rows.append(
            {
                "alpha_mb": alpha_mb,
                "upper_bound_s": bound,
                "simulated_mean_s": measured.mean,
                "k_max": int(ks.max()),
                "split_fraction": float((ks > 1).mean()),
            }
        )
    return rows
