"""Fig. 10 (Sec. 7.2) — runtime of configuring the optimal scale factor.

The paper times Algorithm 1 on 1k-10k files: the cost grows linearly with
the file count and stays under 90 seconds even at 10k (CVXPY per-file
solves).  Our batched bisection solver does the same work orders of
magnitude faster; the *linear growth* is the shape to reproduce.

(The journal PDF mislabels this figure's caption; the content is the
configuration-overhead measurement described in Sec. 7.2.)
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import optimal_scale_factor
from repro.experiments.config import EC2_CLUSTER
from repro.workloads import paper_fileset
from repro.experiments.registry import experiment

__all__ = ["run_fig10"]

PAPER = {"10k_files": "< 90 s (CVXPY)", "growth": "linear in file count"}


@experiment(paper=PAPER, timing_rows=True)
def run_fig10(
    file_counts: tuple[int, ...] = (1000, 2000, 4000, 7000, 10000),
    trials: int = 3,
    scale: float = 1.0,
) -> list[dict]:
    """``scale`` shrinks the file-count ladder (and trial count) uniformly
    so quick passes (``--scale 0.1``) stay linear-shaped but cheap."""
    if scale != 1.0:
        if scale <= 0:
            raise ValueError("scale must be positive")
        file_counts = tuple(
            sorted({max(int(n * scale), 50) for n in file_counts})
        )
        trials = max(1, int(round(trials * scale)))
    rows = []
    for n_files in file_counts:
        pop = paper_fileset(
            n_files, size_mb=100, zipf_exponent=1.05, total_rate=8.0
        )
        times = []
        for t in range(trials):
            start = time.perf_counter()
            optimal_scale_factor(pop, EC2_CLUSTER, seed=t)
            times.append(time.perf_counter() - start)
        rows.append(
            {
                "n_files": n_files,
                "config_time_s": float(np.mean(times)),
                "min_s": float(np.min(times)),
                "max_s": float(np.max(times)),
                "paper_s": "<= 90 at 10k",
            }
        )
    return rows
