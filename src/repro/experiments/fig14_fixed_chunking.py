"""Fig. 14 — SP-Cache versus fixed-size chunking (4/8/16 MB chunks).

Paper shape: small chunks pay heavy connection overhead at light load (4 MB
up to 46 % slower than SP-Cache below rate 15) but balance well; large
chunks (16 MB) avoid the overhead but leave hot spots, ending over 2x
SP-Cache's mean at rate 22.  Tails of the small-chunk configs are
comparable to SP-Cache.
"""

from __future__ import annotations

from repro.common import MB
from repro.experiments.config import DEFAULTS, EC2_CLUSTER
from repro.experiments.skew_resilience import (
    compare_schemes,
    improvement_pct,
    sec73_population,
)
from repro.policies import FixedChunkingPolicy, SPCachePolicy
from repro.experiments.registry import experiment

__all__ = ["run_fig14"]

PAPER = {
    "small_chunks_light_load": "4 MB up to 46 % slower than SP below rate 15",
    "large_chunks_heavy_load": "16 MB mean > 2x SP at rate 22",
}


@experiment(paper=PAPER)
def run_fig14(
    scale: float = 1.0, rates: tuple[float, ...] = (6, 10, 14, 18, 22)
) -> list[dict]:
    schemes = {
        "sp-cache": lambda pop, cl: SPCachePolicy(
            pop, cl, seed=DEFAULTS.seed_policy
        ),
        "chunk-4mb": lambda pop, cl: FixedChunkingPolicy(
            pop, cl, chunk_size=4 * MB, seed=DEFAULTS.seed_policy
        ),
        "chunk-8mb": lambda pop, cl: FixedChunkingPolicy(
            pop, cl, chunk_size=8 * MB, seed=DEFAULTS.seed_policy
        ),
        "chunk-16mb": lambda pop, cl: FixedChunkingPolicy(
            pop, cl, chunk_size=16 * MB, seed=DEFAULTS.seed_policy
        ),
    }
    rows = []
    for rate in rates:
        stats = compare_schemes(
            sec73_population(rate), EC2_CLUSTER, schemes, scale=scale
        )
        row = {"rate": rate}
        for name, s in stats.items():
            key = name.replace("-", "_")
            row[f"{key}_mean"] = s["mean_s"]
            row[f"{key}_p95"] = s["p95_s"]
        row["sp_vs_16mb_pct"] = improvement_pct(
            stats["chunk-16mb"]["mean_s"], stats["sp-cache"]["mean_s"]
        )
        rows.append(row)
    return rows
