"""Theorem 1 — load-variance advantage of SP-Cache over EC-Cache.

Compares three quantities on a skewed workload: the exact closed-form
variances (Bernoulli sums), a Monte Carlo estimate over random placements,
and the paper's asymptotic ratio ``(alpha/k) * sum L_i^2 / sum L_i``.  The
paper's claim: the ratio is ``O(L_max)`` under heavy skew.
"""

from __future__ import annotations

from repro.common import MB
from repro.core.partitioner import partition_counts
from repro.core.theory import (
    ec_load_variance,
    monte_carlo_load_variance,
    sp_load_variance,
    variance_ratio,
    variance_ratio_limit,
)
from repro.workloads import paper_fileset
from repro.experiments.registry import experiment

__all__ = ["run_theorem1"]

PAPER = {"claim": "Var(EC)/Var(SP) -> (alpha/k) * sum L^2 / sum L = O(L_max)"}


@experiment(paper=PAPER)
def run_theorem1(
    n_files: int = 200,
    n_servers: int = 200,
    alpha_mb: float = 2.0,
    k: int = 10,
    n: int = 14,
    n_trials: int = 4000,
) -> list[dict]:
    pop = paper_fileset(n_files, size_mb=100, zipf_exponent=1.05, total_rate=8.0)
    loads = pop.loads
    alpha = alpha_mb / MB

    sp_exact = sp_load_variance(loads, alpha, n_servers)
    ec_exact = ec_load_variance(loads, k, n, n_servers)
    sp_ks = partition_counts(loads, alpha, n_servers=n_servers)
    sp_mc = monte_carlo_load_variance(
        loads, sp_ks, n_servers, serve_probability_extra=0, n_trials=n_trials
    )
    ec_ks = sp_ks * 0 + k
    ec_mc = monte_carlo_load_variance(
        loads, ec_ks, n_servers, serve_probability_extra=1, n_trials=n_trials
    )
    return [
        {"quantity": "Var(X_SP) closed form", "value": sp_exact},
        {"quantity": "Var(X_SP) Monte Carlo", "value": sp_mc},
        {"quantity": "Var(X_EC) closed form", "value": ec_exact},
        {"quantity": "Var(X_EC) Monte Carlo", "value": ec_mc},
        {"quantity": "ratio exact", "value": variance_ratio(loads, alpha, k, n, n_servers)},
        {"quantity": "ratio Monte Carlo", "value": ec_mc / sp_mc},
        {
            "quantity": "ratio asymptotic (Eq. 2)",
            "value": variance_ratio_limit(loads, alpha, k),
        },
        {
            "quantity": "alpha/k * L_max (O(L_max) scale)",
            "value": alpha / k * float(loads.max()),
        },
    ]
