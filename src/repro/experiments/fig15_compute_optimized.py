"""Fig. 15 — compute-optimized cache servers (c4.4xlarge).

Setup (Sec. 7.3): 1.4 Gbps NICs (40 % faster) and AVX2-accelerated coding,
modeled as EC-Cache's decode overhead halved to 10 %.  Paper result: the
gap *persists* — SP-Cache beats EC-Cache by 39-47 % (mean) and 40-53 %
(tail), stays below 0.5 s mean / 0.6 s tail, and selective replication is
3.3-3.8x (mean) and 2.5-8.7x (tail) slower than SP-Cache.
"""

from __future__ import annotations

from repro.experiments.config import C4_CLUSTER
from repro.experiments.fig13_skew_resilience import run_fig13
from repro.experiments.registry import experiment

__all__ = ["run_fig15"]

PAPER = {
    "mean_improvement_vs_ec": "39-47 %",
    "tail_improvement_vs_ec": "40-53 %",
    "rep_slowdown_vs_sp": "3.3-3.8x mean, 2.5-8.7x tail",
    "sp_absolute": "< 0.5 s mean, < 0.6 s p95",
}


@experiment(paper=PAPER)
def run_fig15(
    scale: float = 1.0, rates: tuple[float, ...] = (6, 10, 14, 18, 22)
) -> list[dict]:
    return run_fig13(
        scale=scale, rates=rates, cluster=C4_CLUSTER, decode_overhead=0.10
    )
