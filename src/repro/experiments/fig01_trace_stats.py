"""Fig. 1 — Yahoo! trace statistics: access-count buckets vs mean file size.

Paper's reported facts: ~78 % of files are accessed < 10 times, ~2 % are
accessed >= 100 times, and the hot files are 15-30x larger than the cold
ones on average.
"""

from __future__ import annotations

from repro.common import MB
from repro.workloads.yahoo import YahooTraceModel, access_count_buckets
from repro.experiments.registry import experiment

__all__ = ["run_fig01"]

PAPER = {
    "cold_fraction": 0.78,
    "hot_fraction": 0.02,
    "hot_cold_size_ratio": (15.0, 30.0),
}


@experiment(paper=PAPER)
def run_fig01(n_files: int = 100_000, seed: int = 0) -> list[dict]:
    """Sample a synthetic trace and reproduce the Fig. 1 aggregation."""
    model = YahooTraceModel()
    counts, sizes = model.sample(n_files, seed=seed)
    buckets = access_count_buckets(counts, sizes)
    cold, warm, hot = buckets
    ratio = hot["mean_size"] / cold["mean_size"]
    rows = [
        {
            "bucket": b["bucket"],
            "file_fraction": b["fraction"],
            "mean_size_mb": b["mean_size"] / MB,
        }
        for b in buckets
    ]
    rows.append(
        {
            "bucket": "hot/cold size ratio",
            "file_fraction": "",
            "mean_size_mb": ratio,
        }
    )
    del warm
    return rows
