"""Fig. 3 + Table 2 — selective replication's cost/benefit trade-off.

Setup (Sec. 3.1): the Sec. 2.2 cluster at rate 6; the top 10 % popular
files are copied to r = 1..5 replicas.  Paper shape: memory cost grows
*linearly* with r while mean latency improves only *sublinearly*
(4.5 s -> ~2 s), and the CV drops below 1 only at r >= 4.
"""

from __future__ import annotations

from repro.cluster import simulate_reads
from repro.experiments.config import DEFAULTS, EC2_CLUSTER, sim_config
from repro.policies import SelectiveReplicationPolicy
from repro.workloads import paper_fileset, poisson_trace
from repro.experiments.registry import experiment

__all__ = ["run_fig03"]

PAPER = {
    "cv_by_replicas": {1: 1.29, 2: 1.25, 3: 1.22, 4: 0.61, 5: 0.64},
    "latency_trend": "sublinear improvement, ~4.5s at r=1 to ~2s at r=5",
}


@experiment(paper=PAPER)
def run_fig03(scale: float = 1.0, rate: float = 6.0) -> list[dict]:
    pop = paper_fileset(50, size_mb=40, zipf_exponent=1.1, total_rate=rate)
    trace = poisson_trace(
        pop, n_requests=DEFAULTS.requests(scale), seed=DEFAULTS.seed_trace
    )
    rows = []
    for replicas in (1, 2, 3, 4, 5):
        policy = SelectiveReplicationPolicy(
            pop,
            EC2_CLUSTER,
            top_fraction=0.10,
            replicas=replicas,
            seed=DEFAULTS.seed_policy,
        )
        summary = simulate_reads(
            trace, policy, EC2_CLUSTER, sim_config()
        ).summary()
        rows.append(
            {
                "replicas": replicas,
                "mean_s": summary.mean,
                "p95_s": summary.p95,
                "cv": summary.cv,
                "memory_overhead_pct": policy.memory_overhead() * 100,
                "paper_cv": PAPER["cv_by_replicas"][replicas],
            }
        )
    return rows
