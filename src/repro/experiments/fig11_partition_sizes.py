"""Fig. 11 — partition sizes chosen by SP-Cache across popularity ranks.

Setup (Sec. 7.2): 100 files of 100 MB.  Paper result: the search settles
on an alpha under which only the top ~30 % of files are split at all —
the "vital few" get fine partitions, the "trivial many" stay whole — and
the partition numbers vary widely across the split files.

This experiment runs Algorithm 1 exactly as published (the ``"paper"``
local 1 %-stop mode) over the straggler-aware bound; see
``repro.core.scale_factor`` for why the published stop rule needs the
overhead-aware bound to terminate selectively on every workload size.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.network import GoodputModel
from repro.common import MB
from repro.core import optimal_scale_factor, partition_counts
from repro.core.partitioner import partition_sizes
from repro.experiments.config import EC2_CLUSTER
from repro.workloads import BingStragglerProfile, paper_fileset
from repro.experiments.registry import experiment

__all__ = ["run_fig11"]

PAPER = {"split_fraction": 0.30, "unsplit_tail": "bottom 70% untouched"}


@experiment(paper=PAPER)
def run_fig11(n_files: int = 100, rate: float = 8.0) -> list[dict]:
    pop = paper_fileset(
        n_files, size_mb=100, zipf_exponent=1.05, total_rate=rate
    )
    search = optimal_scale_factor(
        pop,
        EC2_CLUSTER,
        goodput=GoodputModel(),
        straggler_moments=BingStragglerProfile().moments(),
        client_cap=True,
        service_distribution="deterministic",
        mode="paper",
        seed=0,
    )
    ks = partition_counts(pop, search.alpha, n_servers=EC2_CLUSTER.n_servers)
    sizes = partition_sizes(pop, ks)
    # Files are already in descending popularity order (rank 0 hottest).
    rows = []
    for rank in (0, 4, 9, 19, 29, 39, 59, 79, 99):
        if rank >= n_files:
            continue
        rows.append(
            {
                "popularity_rank": rank + 1,
                "partitions": int(ks[rank]),
                "partition_size_mb": sizes[rank] / MB,
            }
        )
    rows.append(
        {
            "popularity_rank": "split fraction",
            "partitions": float((ks > 1).mean()),
            "partition_size_mb": f"paper: {PAPER['split_fraction']}",
        }
    )
    rows.append(
        {
            "popularity_rank": "alpha (MB-load units)",
            "partitions": search.alpha * MB,
            "partition_size_mb": "",
        }
    )
    assert np.all(np.diff(ks.astype(float)) <= 0)  # monotone in popularity
    return rows
