"""Legacy setup shim.

The offline environment ships setuptools 65.5 without the ``wheel``
package, so PEP 517 editable installs fail with "invalid command
'bdist_wheel'".  This shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` take the classic ``setup.py develop`` path.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
