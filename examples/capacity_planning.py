"""Capacity planning with the fork-join latency model.

Scenario: an operator runs a 100-file, 100 MB analytics cache and wants to
know (a) the optimal scale factor for today's popularity, (b) how the
latency bound degrades as the request rate grows, and (c) at what rate the
cluster needs more servers.  Everything here uses the analytical model —
no simulation — so it runs in milliseconds, the way the SP-Master would
every 12 hours.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import ClusterSpec, Gbps, MB, optimal_scale_factor, partition_counts
from repro.analysis.tables import print_table
from repro.cluster.network import GoodputModel
from repro.core import ForkJoinModel
from repro.core.placement import place_partitions_random
from repro.workloads import paper_fileset


def bound_at(pop, cluster, alpha, seed=0):
    ks = partition_counts(pop, alpha, n_servers=cluster.n_servers)
    servers = place_partitions_random(ks, cluster.n_servers, seed=seed)
    return ForkJoinModel(pop, cluster).evaluate(ks, servers)


def main() -> None:
    cluster = ClusterSpec(n_servers=30, bandwidth=Gbps)

    # (a) Configure alpha for the current popularity at the measured rate.
    pop = paper_fileset(100, size_mb=100, zipf_exponent=1.05, total_rate=8.0)
    search = optimal_scale_factor(
        pop,
        cluster,
        goodput=GoodputModel(),
        client_cap=True,
        service_distribution="deterministic",
        mode="sweep",
        seed=0,
    )
    ks = partition_counts(pop, search.alpha, n_servers=30)
    print(
        f"optimal alpha = {search.alpha * MB:.2f} (MB-load units); "
        f"bound = {search.bound:.2f}s; "
        f"hottest file -> {ks.max()} partitions, "
        f"median file -> {int(np.median(ks))}"
    )

    # (b) Latency bound vs offered rate at that alpha.
    rows = []
    for rate in (4, 8, 12, 16, 20, 24, 28):
        ev = bound_at(pop.with_rate(rate), cluster, search.alpha)
        rows.append(
            {
                "rate_req_s": rate,
                "latency_bound_s": ev.mean_bound,
                "max_utilisation": ev.max_utilisation,
                "stable": ev.stable,
            }
        )
    print_table(rows, title="Latency bound vs offered load (30 servers)")

    # (c) Servers needed to keep the bound under an SLO at rate 24.
    slo = 1.0
    rows = []
    for n_servers in (20, 30, 40, 50, 60):
        cl = ClusterSpec(n_servers=n_servers, bandwidth=Gbps)
        s = optimal_scale_factor(
            pop.with_rate(24.0),
            cl,
            goodput=GoodputModel(),
            client_cap=True,
            service_distribution="deterministic",
            mode="sweep",
            seed=0,
        )
        rows.append(
            {
                "servers": n_servers,
                "bound_s": s.bound,
                "meets_1s_slo": bool(np.isfinite(s.bound) and s.bound < slo),
            }
        )
    print_table(rows, title="Cluster sizing for 24 req/s under a 1 s SLO")


if __name__ == "__main__":
    main()
