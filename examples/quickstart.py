"""Quickstart: cache a skewed workload and compare SP-Cache to baselines.

Builds the paper's Sec. 7.3 setting (30 cache servers, 500 x 100 MB files,
Zipf popularity), lets SP-Cache configure itself with Algorithm 1, and
races it against EC-Cache and selective replication on one Poisson trace.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterSpec,
    ECCachePolicy,
    Gbps,
    SelectiveReplicationPolicy,
    SimulationConfig,
    SPCachePolicy,
    StragglerInjector,
    imbalance_factor,
    paper_fileset,
    poisson_trace,
    simulate_reads,
)
from repro.analysis.tables import print_table


def main() -> None:
    cluster = ClusterSpec(n_servers=30, bandwidth=Gbps)
    files = paper_fileset(
        500, size_mb=100, zipf_exponent=1.05, total_rate=18.0
    )
    trace = poisson_trace(files, n_requests=4000, seed=1)
    config = SimulationConfig(
        jitter="deterministic",
        stragglers=StragglerInjector.natural(),
        seed=2,
    )

    rows = []
    for policy in (
        SPCachePolicy(files, cluster, seed=3),
        ECCachePolicy(files, cluster, k=10, n=14, seed=3),
        SelectiveReplicationPolicy(files, cluster, seed=3),
    ):
        result = simulate_reads(trace, policy, cluster, config)
        s = result.summary()
        rows.append(
            {
                "scheme": policy.name,
                "mean_s": s.mean,
                "p95_s": s.p95,
                "imbalance_eta": imbalance_factor(result.server_bytes),
                "memory_overhead_%": round(policy.memory_overhead() * 100, 2),
            }
        )
    print_table(rows, title="SP-Cache vs baselines @ 18 req/s (500 x 100 MB)")
    sp, ec = rows[0], rows[1]
    print(
        f"\nSP-Cache beats EC-Cache by "
        f"{(ec['mean_s'] - sp['mean_s']) / ec['mean_s'] * 100:.0f}% in the "
        f"mean with {ec['memory_overhead_%']:.0f}% less memory overhead."
    )


if __name__ == "__main__":
    main()
