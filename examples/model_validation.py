"""Validating the fork-join upper bound against exact simulation (Sec. 5.3).

The paper trusts Algorithm 1 because the Eq. (9) bound tracks measured
latency (its Fig. 8).  This walkthrough rebuilds that evidence from
scratch: the same workload is pushed through the FIFO engine that matches
the bound's assumptions *exactly* (M/G/1, exponential transfers, no
goodput loss), so the bound must sit above the measurement at every alpha
— and we also show the processor-sharing "real testbed" curve for
contrast.

Run:  python examples/model_validation.py
"""

import numpy as np

from repro.analysis.tables import print_table
from repro.cluster import SimulationConfig, simulate_reads
from repro.common import MB, ClusterSpec, Gbps
from repro.core import ForkJoinModel, partition_counts
from repro.core.placement import place_partitions_random
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace


def main() -> None:
    cluster = ClusterSpec(n_servers=20, bandwidth=Gbps)
    pop = paper_fileset(120, size_mb=60, zipf_exponent=1.05, total_rate=9.0)
    trace = poisson_trace(pop, n_requests=6000, seed=1)
    model = ForkJoinModel(pop, cluster)  # the pure paper model

    rows = []
    for alpha_mb in (0.25, 0.5, 1.0, 2.0, 4.0):
        alpha = alpha_mb / MB
        ks = partition_counts(pop, alpha, n_servers=cluster.n_servers)
        servers_of = place_partitions_random(ks, cluster.n_servers, seed=2)

        bound = model.evaluate(ks, servers_of).mean_bound

        # Pin the same placement into a policy and simulate both ways.
        policy = SPCachePolicy(pop, cluster, alpha=alpha, seed=3)
        policy.servers_of = servers_of
        policy.piece_sizes = [
            np.full(int(k), s / k) for k, s in zip(ks, pop.sizes)
        ]
        fifo = simulate_reads(
            trace,
            policy,
            cluster,
            SimulationConfig(
                discipline="fifo", jitter="exponential", goodput=None, seed=4
            ),
        ).summary()
        ps = simulate_reads(
            trace,
            policy,
            cluster,
            SimulationConfig(discipline="ps", jitter="deterministic", seed=4),
        ).summary()

        rows.append(
            {
                "alpha_mb": alpha_mb,
                "eq9_bound_s": bound,
                "fifo_sim_s": fifo.mean,
                "bound_holds": bool(fifo.mean <= bound * 1.02),
                "ps_sim_s": ps.mean,
            }
        )
    print_table(
        rows,
        title="Eq. (9) bound vs exact M/G/1 simulation vs PS 'testbed'",
    )
    assert all(r["bound_holds"] for r in rows), "the upper bound was violated!"
    print("\nThe bound upper-bounds its own model at every alpha, as proved;")
    print("the PS curve shows why the real system is faster than the model.")


if __name__ == "__main__":
    main()
