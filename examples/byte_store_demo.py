"""The byte-level store: real partitions, real parity, real recovery.

Scenario: a small analytics cluster caches three datasets three different
ways, then suffers evictions and a worker crash.  Every byte is real —
plain partitions reassemble, Reed-Solomon parity decodes around losses,
and a never-checkpointed derived dataset is recomputed through its lineage
(Alluxio's fault-tolerance story, Sec. 8).

Run:  python examples/byte_store_demo.py
"""

import numpy as np

from repro.store import Master, StoreClient, UnderStore, Worker


def dataset(seed: int, size: int) -> bytes:
    return bytes(
        np.random.default_rng(seed).integers(0, 256, size, dtype=np.uint8)
    )


def main() -> None:
    n_workers = 12
    master = Master(n_workers, seed=0)
    workers = [Worker(i, capacity=2_000_000) for i in range(n_workers)]
    client = StoreClient(master, workers, under_store=UnderStore(), seed=0)

    # Three datasets, three schemes.
    raw = dataset(1, 1_200_000)
    client.write(1, raw, k=6)  # SP-Cache-style plain partitions
    client.write_ec(2, dataset(2, 900_000), k=4, n=7)  # EC-Cache style
    client.write_replicated(3, dataset(3, 300_000), replicas=3)

    for fid in (1, 2, 3):
        data = client.read(fid)
        print(f"file {fid}: {len(data):,} bytes OK "
              f"(k={master.meta(fid).k}, locations={len(master.meta(fid).locations)})")

    # A derived dataset with lineage instead of a checkpoint.
    derived = bytes(b ^ 0x5A for b in raw)
    client.write(4, derived, k=4)
    client.lineage.register(
        4, parents=(1,), recompute=lambda ps: bytes(b ^ 0x5A for b in ps[0])
    )
    client.checkpoint(1)  # the parent is persisted; the child is not

    # Disaster: two workers crash.
    for wid in (0, 1):
        workers[wid].crash()
    print("\nworkers 0 and 1 crashed")

    # EC file survives via parity; partitioned files recover via
    # checkpoint or lineage recompute.
    for fid in (1, 2, 3, 4):
        data = client.read(fid)
        print(f"file {fid}: {len(data):,} bytes recovered/served")
    print(f"\nrecoveries triggered: {client.recoveries}")
    print(f"under-store reads: {client.under_store.reads}")

    # Popularity made file 4 hot: repartition it finer, in place.
    for _ in range(25):
        client.read(4)
    ids, sizes, pops = master.popularity_snapshot()
    hottest = int(ids[np.argmax(pops)])
    print(f"\nhottest file by access count: {hottest}")
    meta = client.repartition(hottest, new_k=8, placement="least_loaded")
    print(f"repartitioned file {hottest} to k={len(meta.locations)}; "
          f"read OK: {client.read(hottest) == derived}")


if __name__ == "__main__":
    main()
