"""Reacting to a popularity shift with parallel repartition (Sec. 7.4).

Scenario: an overnight batch pipeline changes which datasets are hot.  The
SP-Master re-runs Algorithm 1 on the new access counts, plans Algorithm 2,
and the SP-Repartitioners move only the files whose partition count
changed.  We show the load imbalance before/after, the repartition plan's
size, and the parallel-vs-sequential completion time.

Run:  python examples/popularity_shift.py
"""

from repro import (
    ClusterSpec,
    Gbps,
    SimulationConfig,
    SPCachePolicy,
    StragglerInjector,
    imbalance_factor,
    paper_fileset,
    plan_repartition,
    poisson_trace,
    simulate_reads,
)
from repro.analysis.tables import print_table
from repro.core.placement import placement_server_loads
from repro.core.repartition import (
    repartition_time_parallel,
    repartition_time_sequential,
)
from repro.workloads import shuffled_popularity


def measure(pop, policy, cluster, label):
    trace = poisson_trace(pop, n_requests=3000, seed=11)
    result = simulate_reads(
        trace,
        policy,
        cluster,
        SimulationConfig(
            jitter="deterministic",
            stragglers=StragglerInjector.natural(),
            seed=12,
        ),
    )
    s = result.summary()
    return {
        "state": label,
        "mean_s": s.mean,
        "p95_s": s.p95,
        "eta": imbalance_factor(result.server_bytes),
    }


def main() -> None:
    cluster = ClusterSpec(n_servers=30, bandwidth=Gbps)
    day1 = paper_fileset(250, size_mb=50, zipf_exponent=1.05, total_rate=12.0)
    policy = SPCachePolicy(day1, cluster, straggler_aware=True, seed=0)

    # Overnight, the ranks shuffle: yesterday's layout serves today's load.
    day2 = day1.with_popularities(
        shuffled_popularity(day1.popularities, seed=1)
    )
    stale = SPCachePolicy(day2, cluster, alpha=policy.alpha, seed=99)
    stale.servers_of = policy.servers_of  # yesterday's placement
    stale.piece_sizes = policy.piece_sizes

    rows = [
        measure(day1, policy, cluster, "day 1 (tuned)"),
        measure(day2, stale, cluster, "day 2 (stale layout)"),
    ]

    # The SP-Master plans the re-balance.
    plan = plan_repartition(
        day2,
        cluster,
        policy.partition_counts(),
        policy.servers_of,
        alpha=policy.alpha,
        seed=2,
    )
    par = repartition_time_parallel(plan, day2, cluster, policy.partition_counts())
    seq = repartition_time_sequential(plan, day2, cluster, policy.partition_counts())

    rebalanced = policy.repartition(day2)
    rebalanced.servers_of = plan.new_servers_of
    rebalanced.piece_sizes = [
        pieces if not plan.changed[i] else rebalanced.piece_sizes[i]
        for i, pieces in enumerate(rebalanced.piece_sizes)
    ]
    rows.append(measure(day2, rebalanced, cluster, "day 2 (repartitioned)"))

    print_table(rows, title="Popularity shift: latency and balance")
    print(
        f"\nrepartitioned {plan.n_changed}/{day2.n_files} files "
        f"({plan.changed_fraction:.0%}); parallel scheme: {par:.1f}s, "
        f"naive sequential: {seq:.0f}s ({seq / max(par, 1e-9):.0f}x slower)"
    )
    eta_after = imbalance_factor(
        placement_server_loads(plan.new_servers_of, day2.loads, 30)
    )
    print(f"expected load imbalance after greedy re-placement: eta={eta_after:.2f}")


if __name__ == "__main__":
    main()
