"""Handling a sudden popularity burst online (Sec. 8's extension).

Scenario: between two 12-hour repartition rounds, a previously cold
dataset suddenly trends.  The online adjuster (distributed split/merge of
existing partitions) reacts within seconds of traffic, without collecting
any file at the master.  We show the latency of the stale layout, the
adjuster's convergence, and the data it moved compared with a full
Algorithm 2 repartition.

Run:  python examples/online_burst_response.py
"""

import numpy as np

from repro import (
    ClusterSpec,
    Gbps,
    SimulationConfig,
    SPCachePolicy,
    StragglerInjector,
    paper_fileset,
    poisson_trace,
    simulate_reads,
)
from repro.analysis.tables import print_table
from repro.common import MB
from repro.core import OnlineAdjuster


def simulate_with_ks(pop, cluster, alpha, ks, trace):
    policy = SPCachePolicy(pop, cluster, alpha=alpha, seed=4)
    policy.servers_of = [
        np.random.default_rng(9 + i).permutation(cluster.n_servers)[: int(k)]
        for i, k in enumerate(ks)
    ]
    policy.piece_sizes = [
        np.full(int(k), pop.sizes[i] / k) for i, k in enumerate(ks)
    ]
    cfg = SimulationConfig(
        jitter="deterministic",
        stragglers=StragglerInjector.natural(),
        seed=5,
    )
    return simulate_reads(trace, policy, cluster, cfg).summary()


def main() -> None:
    cluster = ClusterSpec(n_servers=30, bandwidth=Gbps)
    alpha = 2.0 / MB
    base = paper_fileset(150, size_mb=100, zipf_exponent=1.05, total_rate=12.0)

    # The burst: a cold file jumps to second place overnight.
    burst_file = 120
    pops = base.popularities.copy()
    pops[burst_file] = base.popularities[1]
    bursty = base.with_popularities(pops)
    trace = poisson_trace(bursty, n_requests=4000, seed=6)

    from repro.core.partitioner import partition_counts

    stale_ks = partition_counts(base, alpha, n_servers=30)
    print(f"stale layout: file {burst_file} holds {stale_ks[burst_file]} partition(s)")

    adjuster = OnlineAdjuster(
        bursty, cluster, alpha, stale_ks, window=4000, tolerance=1.5
    )
    adjuster.observe_many(trace.file_ids[:2500])
    rounds = 0
    while rounds < 10:
        ops = adjuster.step()
        if not ops:
            break
        rounds += 1
        for op in ops:
            if op.file_id == burst_file:
                print(
                    f"  round {rounds}: {op.action} file {op.file_id} "
                    f"k {op.old_k} -> {op.new_k}"
                )

    rows = [
        {
            "layout": "stale (burst unhandled)",
            **simulate_with_ks(bursty, cluster, alpha, stale_ks, trace).row(),
        },
        {
            "layout": f"online-adjusted ({rounds} rounds)",
            **simulate_with_ks(bursty, cluster, alpha, adjuster.ks, trace).row(),
        },
    ]
    print_table(rows, title="Burst response: stale vs online-adjusted layout")
    print(
        f"\nonline adjustment moved {adjuster.total_moved_bytes / MB:.0f} MB in "
        f"{rounds} distributed rounds "
        f"(~{adjuster.adjustment_time(adjuster.plan()) + 0.0:.2f}s/round of wall time);"
    )
    print(
        "a full Algorithm 2 repartition would have collected and re-shipped "
        f"every changed file (~{bursty.sizes[burst_file] / MB:.0f} MB for the "
        "burst file alone, via a single repartitioner)."
    )


if __name__ == "__main__":
    main()
