"""Trace-driven what-if analysis on realistic data (Sec. 7.7's workload).

Scenario: a platform team wants to know how much cache to buy.  Files
follow the Yahoo! size/popularity joint law, arrivals are bursty
(Google-style MMPP), the cluster cache is throttled, and a miss costs 3x.
We sweep the budget and report latency + hit ratio per scheme, then print
latency CDF points for the chosen budget.

Run:  python examples/trace_driven_analysis.py
"""

from repro import (
    ECCachePolicy,
    SelectiveReplicationPolicy,
    SimulationConfig,
    SPCachePolicy,
    StragglerInjector,
    simulate_reads,
)
from repro.analysis.stats import cdf_points
from repro.analysis.tables import print_table
from repro.common import GB
from repro.experiments.config import EC2_CLUSTER
from repro.workloads import (
    GoogleArrivalModel,
    trace_from_times,
    yahoo_file_population,
)


def main() -> None:
    # Yahoo!-sized files are big (hot ones especially), so the 30 x 1 Gbps
    # cluster saturates near 9 req/s on this population; 6 req/s is heavy
    # but stable.
    rate = 6.0
    pop = yahoo_file_population(1500, total_rate=rate, zipf_exponent=1.1, seed=3)
    times = GoogleArrivalModel().arrival_times(rate, horizon=3000 / rate, seed=4)
    trace = trace_from_times(times, pop, seed=4)
    print(
        f"{pop.n_files} files, {pop.total_bytes / GB:.0f} GB total, "
        f"{trace.n_requests} bursty requests"
    )

    schemes = {
        "sp-cache": SPCachePolicy(pop, EC2_CLUSTER, seed=5),
        "ec-cache": ECCachePolicy(pop, EC2_CLUSTER, seed=5),
        "replication": SelectiveReplicationPolicy(pop, EC2_CLUSTER, seed=5),
    }

    rows = []
    for budget_gb in (20, 30, 45, 70):
        for name, policy in schemes.items():
            result = simulate_reads(
                trace,
                policy,
                EC2_CLUSTER,
                SimulationConfig(
                    jitter="deterministic",
                    stragglers=StragglerInjector.natural(),
                    cache_budget=budget_gb * GB,
                    seed=6,
                ),
            )
            s = result.summary()
            rows.append(
                {
                    "budget_gb": budget_gb,
                    "scheme": name,
                    "mean_s": s.mean,
                    "p95_s": s.p95,
                    "hit_ratio": result.hit_ratio,
                }
            )
    print_table(rows, title="Budget sweep on the Yahoo!/Google workload")

    # CDF of the winning configuration.
    best = simulate_reads(
        trace,
        schemes["sp-cache"],
        EC2_CLUSTER,
        SimulationConfig(
            jitter="deterministic",
            stragglers=StragglerInjector.natural(),
            cache_budget=45 * GB,
            seed=6,
        ),
    )
    xs, ps = cdf_points(best.steady_state_latencies(), n_points=6)
    print_table(
        [{"percentile": f"{p:.0%}", "latency_s": x} for x, p in zip(xs, ps)],
        title="SP-Cache latency CDF @ 45 GB budget",
    )


if __name__ == "__main__":
    main()
